"""The simulated reconfigurable board.

This is the hardware substitute (see DESIGN.md): a board holds one
programmed design consisting of engine slots — one per sub-program the
hypervisor placed — and *executes the transformed Verilog* of each slot
with cycle accounting against the device's clock.

The execution protocol is the hardware half of the Cascade ABI:

* ``set_var``/``get_var`` — data-plane access to program variables
  (over Avalon-MM on the DE10, PCIe on F1; latency modeled);
* ``evaluate`` — drive the native clock until the slot's state machine
  raises ``__done`` or traps with a nonzero ``__task``;
* ``cont`` — pulse ``__abi = CONT`` for one native cycle after the
  runtime services a trap, then keep driving.

Native cycles are counted per slot; dividing by the board clock gives
the simulated wall time used by the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.control import ABI_CONT, ABI_NONE, ABI_PORT, NATIVE_CLOCK
from ..core.pipeline import CompiledProgram
from ..interp.simulator import Simulator, resolve_backend
from ..interp.systasks import TaskHost
from ..verilog import ast_nodes as ast
from .bitstream import Bitstream
from .device import Device
from .errors import BoardDeadError, BoardError  # noqa: F401  (canonical home moved)
from .faults import FaultPlan, default_fault_plan

_MAX_FREERUN_CYCLES = 1_000_000


@dataclass
class EvalOutcome:
    """Result of driving one slot: finished, or trapped on a task."""

    status: str  # "done" | "trap"
    task_id: int = 0
    native_cycles: int = 0


@dataclass
class BatchOutcome:
    """Result of a batched run: ticks completed before stop/trap."""

    status: str  # "done" | "trap"
    ticks_done: int = 0
    task_id: int = 0
    native_cycles_total: int = 0


@dataclass
class EngineSlot:
    """One sub-program resident on the fabric."""

    engine_id: int
    program: CompiledProgram
    sim: Simulator
    native_cycles: int = 0
    abi_ops: int = 0

    @property
    def done(self) -> bool:
        return self.sim.get("__done") != 0

    @property
    def pending_task(self) -> int:
        return self.sim.get("__task")


class SimulatedBoard:
    """A reconfigurable device executing transformed sub-programs."""

    def __init__(self, device: Device, sim_backend: Optional[str] = None,
                 compiler=None, opt_level: Optional[int] = None,
                 faults: Optional[FaultPlan] = None):
        self.device = device
        self.sim_backend = sim_backend
        #: mid-end optimization level for slot codegen (None = ambient
        #: REPRO_OPT_LEVEL); tenants on one board share one level so
        #: their artifacts co-intern under one pipeline fingerprint
        self.opt_level = opt_level
        #: Optional :class:`~repro.compiler.CompilerService`: slots of
        #: programs with the same transformed text then share one
        #: codegen artifact — reprogramming epochs and same-workload
        #: tenants stop paying per-slot compilation.
        self.compiler = compiler
        #: Fault-injection schedule; defaults to the ambient
        #: ``REPRO_FAULT_SPEC`` plan (``None`` when chaos is off).
        self.faults = faults if faults is not None else default_fault_plan()
        #: A dead board rejects every operation with
        #: :class:`~repro.fabric.errors.BoardDeadError`; all slot state
        #: is lost (tenants recover from checkpoints, not the board).
        self.dead = False
        self.bitstream: Optional[Bitstream] = None
        self.clock_hz: float = device.max_clock_hz
        self.slots: Dict[int, EngineSlot] = {}
        self.reconfigurations = 0
        self.reconfig_seconds_total = 0.0

    # -- health ----------------------------------------------------------------

    def kill(self) -> None:
        """Model whole-board death: drop all slot state, reject all ops."""
        self.dead = True
        self.slots.clear()
        self.bitstream = None

    def _check_alive(self) -> None:
        if self.dead:
            raise BoardDeadError(f"board {self.device.name} is dead")

    # -- (re)programming -------------------------------------------------------

    def _slot_code(self, program: CompiledProgram):
        """Shared (or slot-local) codegen for one slot's transformed
        module; ``None`` only for the interpreter backend.

        Trap servicing reads argument expressions and writes results
        over the ABI by *name* — accesses the transformed module's own
        text never shows — so the task table's support set is pinned
        as mid-end optimization roots.
        """
        if resolve_backend(self.sim_backend) != "compiled":
            return None
        keep = program.transform.external_names()
        if self.compiler is not None:
            return self.compiler.codegen(program.transform.module,
                                         env=program.hardware_env,
                                         digest=program.hardware_digest,
                                         opt_level=self.opt_level,
                                         keep=keep)
        from ..interp.compile import CompiledModuleCode

        return CompiledModuleCode(program.transform.module,
                                  env=program.hardware_env,
                                  opt_level=self.opt_level, keep=keep)

    def program(self, bitstream: Bitstream,
                engines: Dict[int, CompiledProgram]) -> None:
        """Load a design; destroys all current slot state (hence the
        hypervisor's state-safe handshake before calling this)."""
        self._check_alive()
        if self.faults is not None and self.faults.active:
            # Injected load failures fire *before* the current design is
            # torn down, so a failed attempt is safely retryable.
            self.faults.program_op(self)
        self.slots.clear()
        self.bitstream = bitstream
        self.clock_hz = bitstream.clock_hz
        self.reconfigurations += 1
        self.reconfig_seconds_total += self.device.reconfig_seconds
        for engine_id, program in engines.items():
            # Each slot executes the transformed module; unsynthesizable
            # behaviour only ever reaches hardware as task traps, so the
            # slot's TaskHost must stay silent.
            sim = Simulator(program.transform.module, TaskHost(),
                            backend=self.sim_backend,
                            code=self._slot_code(program))
            self.slots[engine_id] = EngineSlot(engine_id, program, sim)

    def _slot(self, engine_id: int) -> EngineSlot:
        self._check_alive()
        try:
            return self.slots[engine_id]
        except KeyError:
            raise BoardError(f"no engine slot {engine_id}") from None

    def _control_fault(self, op: str) -> None:
        """Fault-injection point for control-plane ops.

        Fires *before* any slot state is mutated, so a supervised retry
        replays the operation exactly."""
        if self.faults is not None and self.faults.active:
            self.faults.control_op(self, op)

    # -- data plane ----------------------------------------------------------------

    def set_var(self, engine_id: int, name: str, value: int) -> None:
        slot = self._slot(engine_id)
        slot.abi_ops += 1
        slot.sim.set(name, value)
        # A set message lands between native clock cycles: combinational
        # logic (edge-detection wires included) settles before the next
        # edge samples it.
        slot.sim.step()

    def get_var(self, engine_id: int, name: str) -> int:
        slot = self._slot(engine_id)
        slot.abi_ops += 1
        return slot.sim.get(name)

    def read_expr(self, engine_id: int, expr: ast.Expr) -> int:
        """Evaluate a (synthesizable) expression against slot state.

        Used by the runtime to fetch trap arguments — semantically a
        bundle of ``get`` requests.
        """
        slot = self._slot(engine_id)
        slot.abi_ops += 1
        return slot.sim.evaluator.eval(expr)

    def write_lvalue(self, engine_id: int, lhs: ast.Expr, value: int) -> None:
        """Write a trap result back into slot state (a ``set``)."""
        slot = self._slot(engine_id)
        slot.abi_ops += 1
        slot.sim.evaluator.assign(lhs, value)
        slot.sim.step()

    def snapshot(self, engine_id: int, names=None) -> Dict[str, object]:
        """Bulk ``get``: capture slot program state.

        A narrowed capture set (*names*) always gets the transform's
        ``__``-prefixed bookkeeping added back: the control state,
        the NBA shadow registers and the pending-update queues
        (``__wqa/__wqd/__wn``) are what make a snapshot taken
        *mid-schedule* (between a trap and its continuation) replay
        identically — they are state, not volatile scratch, even
        though no source-level capture set ever names them.
        """
        slot = self._slot(engine_id)
        if names is not None:
            env = slot.sim.store.env
            book = [n for n in env.signals if n.startswith("__")]
            names = list(names) + [n for n in book if n not in set(names)]
        snap = slot.sim.store.snapshot(names)
        slot.abi_ops += max(1, len(snap))
        return snap

    def restore(self, engine_id: int, snapshot: Dict[str, object]) -> None:
        """Bulk ``set``: restore slot program state."""
        slot = self._slot(engine_id)
        slot.abi_ops += max(1, len(snapshot))
        slot.sim.store.restore(snapshot)
        slot.sim.step()

    # -- control plane ------------------------------------------------------------------

    def _drive(self, slot: EngineSlot, budget: int = _MAX_FREERUN_CYCLES) -> EvalOutcome:
        cycles = 0
        while True:
            slot.sim.tick(NATIVE_CLOCK)
            cycles += 1
            slot.native_cycles += 1
            task = slot.pending_task
            if task:
                return EvalOutcome("trap", task, cycles)
            if slot.done:
                return EvalOutcome("done", 0, cycles)
            if cycles >= budget:
                raise BoardError(
                    f"engine {slot.engine_id} exceeded the free-run budget"
                )

    def evaluate(self, engine_id: int) -> EvalOutcome:
        """Drive the native clock until the slot finishes or traps."""
        slot = self._slot(engine_id)
        if slot.pending_task:
            raise BoardError("evaluate with a pending trap; call cont()")
        self._control_fault("evaluate")
        return self._drive(slot)

    def cont(self, engine_id: int) -> EvalOutcome:
        """Grant continuation after a serviced trap and keep driving."""
        slot = self._slot(engine_id)
        self._control_fault("cont")
        slot.sim.set(ABI_PORT, ABI_CONT)
        slot.sim.step()  # let the __cont wire settle before the edge
        slot.sim.tick(NATIVE_CLOCK)
        slot.native_cycles += 1
        slot.sim.set(ABI_PORT, ABI_NONE)
        slot.sim.step()
        task = slot.pending_task
        if task:
            return EvalOutcome("trap", task, 1)
        if slot.done:
            return EvalOutcome("done", 0, 1)
        outcome = self._drive(slot)
        return EvalOutcome(outcome.status, outcome.task_id, outcome.native_cycles + 1)

    def run_ticks(self, engine_id: int, clock: str, ticks: int) -> "BatchOutcome":
        """Drive up to *ticks* virtual clock periods autonomously.

        Models on-device virtual-clock generation: no host round trips
        between ticks.  Returns early when a state machine traps; the
        in-flight tick is then mid-rising-edge and the caller finishes
        it through cont/evaluate.
        """
        slot = self._slot(engine_id)
        self._control_fault("run_ticks")
        start_cycles = slot.native_cycles
        done = 0
        while done < ticks:
            slot.sim.set(clock, 1)
            slot.sim.step()
            outcome = self._drive(slot)
            if outcome.status == "trap":
                return BatchOutcome("trap", done, outcome.task_id,
                                    slot.native_cycles - start_cycles)
            slot.sim.set(clock, 0)
            slot.sim.step()
            outcome = self._drive(slot)
            if outcome.status == "trap":
                return BatchOutcome("trap", done, outcome.task_id,
                                    slot.native_cycles - start_cycles)
            done += 1
        return BatchOutcome("done", done, 0, slot.native_cycles - start_cycles)

    # -- accounting -------------------------------------------------------------------------

    def slot_seconds(self, engine_id: int) -> float:
        """Simulated wall time consumed by one slot's native cycles."""
        slot = self._slot(engine_id)
        return slot.native_cycles / self.clock_hz

    def utilization(self) -> Dict[str, float]:
        """Fractions of device resources used by the programmed design."""
        if self.bitstream is None:
            return {"luts": 0.0, "ffs": 0.0}
        res = self.bitstream.resources
        return {
            "luts": res.luts / self.device.luts,
            "ffs": res.ffs / self.device.ffs,
        }
