"""Device models for the simulated reconfigurable fabric.

The paper evaluates on two real platforms; we model both with the same
knobs the experiments exercise (§6):

* **DE10** — Terasic DE10-Nano SoC: Intel Cyclone V, 110K LUTs, 50 MHz
  fabric clock, ARM host, Avalon memory-mapped IO.
* **F1** — AWS EC2 F1: Xilinx UltraScale+ VU9P, ~10× the LUTs and 5× the
  clock of the DE10, PCIe host attach, longer reconfiguration.

``Device`` instances are immutable specs; the mutable execution object
is :class:`repro.fabric.board.SimulatedBoard`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Device:
    """Static description of one FPGA target."""

    name: str
    family: str
    luts: int
    ffs: int
    bram_kbits: int
    max_clock_hz: float
    #: Discrete clock steps the build scripts walk down when a design
    #: misses timing (§5.2's iterative frequency reduction).
    clock_steps_hz: Tuple[float, ...]
    #: Seconds to reprogram the whole fabric with a new bitstream.
    reconfig_seconds: float
    #: Latency of one ABI request over the host link (get/set/etc.).
    abi_latency_s: float
    #: Effective combinational delay per logic level (ns) — calibrated so
    #: the paper's benchmarks land near their reported frequencies.
    lut_delay_ns: float
    #: Baseline seconds for a full synthesis+place+route run.
    compile_seconds: float
    #: Interface used by the backend (reporting only).
    host_interface: str = "mmio"

    def achievable_hz(self, logic_levels: int) -> float:
        """Raw frequency the critical path supports (before stepping)."""
        if logic_levels <= 0:
            return self.max_clock_hz
        raw = 1e9 / (logic_levels * self.lut_delay_ns)
        return min(self.max_clock_hz, raw)

    #: Closure margin: builds within this fraction of a clock step are
    #: pushed through with extra P&R effort (the iteratively re-run,
    #: data-preserving builds of Synergy's build scripts, §5.2).
    CLOSE_MARGIN = 0.05

    def closed_hz(self, logic_levels: int) -> float:
        """Largest supported clock step within reach of the raw frequency."""
        raw = self.achievable_hz(logic_levels) * (1.0 + self.CLOSE_MARGIN)
        for step in self.clock_steps_hz:
            if step <= raw + 1e-6:
                return step
        return self.clock_steps_hz[-1]

    def fits(self, luts: int, ffs: int) -> bool:
        return luts <= self.luts and ffs <= self.ffs

    #: How much slower than the ABI link an operation may be before the
    #: supervisor declares it hung.  Any legitimate control-plane call
    #: charges at most a handful of link round trips of modeled time;
    #: a wedged engine stalls for seconds.
    DEADLINE_LINK_MULTIPLE = 1e4

    @property
    def op_deadline_s(self) -> float:
        """Per-operation deadline for supervised board calls (seconds)."""
        return self.abi_latency_s * self.DEADLINE_LINK_MULTIPLE


#: Terasic DE10-Nano (Intel Cyclone V SE, §6's first platform).
DE10 = Device(
    name="de10",
    family="cyclone-v",
    luts=110_000,
    ffs=220_000,
    bram_kbits=5_570,
    max_clock_hz=50e6,
    clock_steps_hz=(50e6, 25e6, 12.5e6, 6.25e6),
    reconfig_seconds=1.2,
    abi_latency_s=3e-7,       # Avalon MM single-word access
    lut_delay_ns=1.0,
    compile_seconds=20 * 60,  # Quartus Lite, per the artifact appendix
    host_interface="avalon-mm",
)

#: AWS F1 (Xilinx UltraScale+ VU9P): 10x the LUTs, 5x the clock (§5.2).
F1 = Device(
    name="f1",
    family="ultrascale-plus",
    luts=1_100_000,
    ffs=2_200_000,
    bram_kbits=75_900,
    max_clock_hz=250e6,
    clock_steps_hz=(250e6, 125e6, 62.5e6, 31.25e6),
    reconfig_seconds=4.0,
    abi_latency_s=1e-6,       # PCIe round trip
    lut_delay_ns=0.45,
    compile_seconds=2 * 3600,  # Vivado, per the artifact appendix
    host_interface="pcie",
)

#: Intel Stratix 10 SoC — §5.1: the Intel backend "describes a range of
#: targets, including the high-performance Stratix 10"; same Avalon-MM
#: interface as the DE10, data-center-class fabric.
STRATIX10 = Device(
    name="stratix10",
    family="stratix-10",
    luts=933_000,
    ffs=1_866_000,
    bram_kbits=112_000,
    max_clock_hz=300e6,
    clock_steps_hz=(300e6, 150e6, 75e6, 37.5e6),
    reconfig_seconds=2.5,
    abi_latency_s=4e-7,       # Avalon MM through the hard ARM complex
    lut_delay_ns=0.5,
    compile_seconds=3 * 3600,  # full Quartus Prime Pro flow
    host_interface="avalon-mm",
)

DEVICES = {device.name: device for device in (DE10, F1, STRATIX10)}


def device_by_name(name: str) -> Device:
    """Look up a built-in device model."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None
