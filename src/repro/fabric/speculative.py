"""Speculative compilation (paper §7, future work).

"As more applications use FPGAs, cache hit rates may drop and
symmetry-breaking or speculative compilation may be needed to
compensate."  This module implements that compensation for the
hypervisor's membership churn: after every reprogramming epoch, the
likely *next* designs — the current member set minus each single tenant
— are queued for background compilation.  When a tenant actually leaves,
the recompiled design is already in the cache and the state-safe
handshake pays only reconfiguration.

Background compilation is modeled the way the paper models foreground
compilation: each speculative build has a completion time; a lookup
before that time is still a miss (the build hasn't finished).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .bitstream import Bitstream
from .cache import CompilationCache


@dataclass
class SpeculativeBuild:
    """One in-flight background compilation."""

    digest: str
    bitstream: Bitstream
    ready_at: float
    reason: str = ""


class SpeculativeCompiler:
    """Background compilation queue feeding a :class:`CompilationCache`.

    ``parallelism`` models how many build machines the provider throws
    at speculation (distributed build farms are standard practice for
    FPGA shops; see the paper's §8 discussion of build caching).
    """

    def __init__(self, cache: CompilationCache, device_name: str,
                 options_key: str = "hypervisor", parallelism: int = 2):
        self.cache = cache
        self.device_name = device_name
        self.options_key = options_key
        self.parallelism = parallelism
        self.in_flight: List[SpeculativeBuild] = []
        self.completed = 0
        self.wasted = 0  # completed but never looked up

    def enqueue(self, bitstream: Bitstream, now: float, reason: str = "") -> None:
        """Start a background build for *bitstream*'s design."""
        if self.cache.lookup_quiet(self.device_name, self.options_key,
                                   bitstream.digest):
            return  # already cached
        if any(b.digest == bitstream.digest for b in self.in_flight):
            return  # already building
        # Builds beyond the farm's parallelism queue behind the earliest.
        lane_free_at = now
        if len(self.in_flight) >= self.parallelism:
            lane_free_at = sorted(b.ready_at for b in self.in_flight)[
                len(self.in_flight) - self.parallelism
            ]
        self.in_flight.append(SpeculativeBuild(
            digest=bitstream.digest,
            bitstream=bitstream,
            ready_at=max(now, lane_free_at) + bitstream.compile_seconds,
            reason=reason,
        ))

    def settle(self, now: float) -> int:
        """Move finished builds into the cache; returns how many landed."""
        landed = 0
        remaining: List[SpeculativeBuild] = []
        for build in self.in_flight:
            if build.ready_at <= now:
                self.cache.insert(self.device_name, self.options_key,
                                  build.bitstream)
                self.completed += 1
                landed += 1
            else:
                remaining.append(build)
        self.in_flight = remaining
        return landed
