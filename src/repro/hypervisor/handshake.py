"""The state-safe compilation handshake (paper §4.2, Figure 7).

Changing the text of one instance's sub-programs requires reprogramming
the whole FPGA, which would destroy every connected instance's state.
The hypervisor therefore schedules destructive events only when all
connected instances are between logical clock-ticks and have saved
their state:

1. a compilation request runs asynchronously until it would do
   something destructive;
2. the hypervisor asks every connected instance to schedule an
   interrupt between its logical clock ticks;
3. at the interrupt, each instance issues ``get`` requests to save its
   program state and replies that reprogramming is safe;
4. the device is reprogrammed; instances ``set`` their state back and
   control proceeds as normal.

For Morphlets implementing the quiescence protocol, step 3 waits for a
``$yield`` and captures only non-volatile variables (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.pipeline import CompiledProgram
from ..fabric.bitstream import Bitstream
from ..fabric.board import SimulatedBoard
from ..fabric.retry import RetryPolicy, retry_call


@dataclass
class HandshakeReport:
    """Accounting for one state-safe reprogramming epoch."""

    engines_paused: int = 0
    bits_saved: int = 0
    bits_restored: int = 0
    reconfig_seconds: float = 0.0
    transfer_seconds: float = 0.0
    #: bitstream-load attempts that failed transiently and were retried
    program_retries: int = 0
    #: modeled backoff spent on those retries
    retry_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.reconfig_seconds + self.transfer_seconds + self.retry_seconds


#: get/set bandwidth used for bulk state evacuation during handshakes.
HANDSHAKE_BANDWIDTH_BITS_S = 2e6


def state_safe_reprogram(
    board: SimulatedBoard,
    bitstream: Bitstream,
    programs: Dict[int, CompiledProgram],
    capture_sets: Optional[Dict[int, List[str]]] = None,
    retry: Optional[RetryPolicy] = None,
) -> HandshakeReport:
    """Execute the Figure 7 protocol against a simulated board.

    *capture_sets* optionally narrows each engine's saved variables to
    its quiescence capture set.  Engines present before and after the
    epoch have their state preserved across the reprogram; new engines
    power up fresh.
    """
    capture_sets = capture_sets or {}
    report = HandshakeReport()

    # Steps 2-4: interrupt every connected instance between ticks and
    # evacuate state through get requests.
    saved: Dict[int, Dict[str, object]] = {}
    for engine_id, slot in list(board.slots.items()):
        if engine_id not in programs:
            continue  # retired: flagged for removal, state discarded
        names = capture_sets.get(engine_id)
        snapshot = board.snapshot(engine_id, names)
        saved[engine_id] = snapshot
        bits = slot.sim.store.state_bits(names)
        report.bits_saved += bits
        report.engines_paused += 1

    # Step 5 complete: reprogram the device.  Bitstream loads can fail
    # transiently (fault injection); program() raises before destroying
    # the running design, so the saved state stays valid across retries.
    _, retries, backoff = retry_call(
        retry if retry is not None else RetryPolicy(),
        lambda: board.program(bitstream, programs),
    )
    report.program_retries = retries
    report.retry_seconds = backoff
    report.reconfig_seconds = board.device.reconfig_seconds

    # Reverse handshake: instances restore their state with sets.
    for engine_id, snapshot in saved.items():
        board.restore(engine_id, snapshot)
        report.bits_restored += board.slots[engine_id].sim.store.state_bits(
            capture_sets.get(engine_id)
        )

    report.transfer_seconds = (
        (report.bits_saved + report.bits_restored) / HANDSHAKE_BANDWIDTH_BITS_S
    )
    return report
