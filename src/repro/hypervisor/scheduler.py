"""Hypervisor scheduling: ABI serialization and IO-path time-sharing.

The hypervisor schedules ABI requests sequentially to avoid resource
contention (§4.2).  Temporal multiplexing is what happens when multiple
sub-programs contend on a common IO path between software and hardware
(§4.3, Figure 11): requests are served round-robin, so each stream's
effective per-operation latency is the sum of every active stream's
service time — and a stream with short operations (regex's character
reads) loses more than half its throughput next to one with long
operations (nw's string reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class IoStream:
    """One sub-program's presence on the shared IO path."""

    engine_id: int
    op_seconds: float  # service time of one primitive operation
    active: bool = True


class RoundRobinIoScheduler:
    """Round-robin service of a shared IO resource."""

    def __init__(self):
        self._streams: Dict[int, IoStream] = {}
        self.rounds = 0

    def register(self, engine_id: int, op_seconds: float) -> None:
        self._streams[engine_id] = IoStream(engine_id, op_seconds)

    def unregister(self, engine_id: int) -> None:
        self._streams.pop(engine_id, None)

    def clear(self) -> None:
        """Drop every stream (board quarantine: no IO path remains)."""
        self._streams.clear()

    def set_active(self, engine_id: int, active: bool) -> None:
        if engine_id in self._streams:
            self._streams[engine_id].active = active

    @property
    def contenders(self) -> List[IoStream]:
        return [s for s in self._streams.values() if s.active]

    def effective_period(self, engine_id: int) -> float:
        """Seconds between successive completions for one stream.

        Alone: the stream's own service time.  Contended: one full
        round-robin round — the sum of every active stream's op time.
        """
        stream = self._streams[engine_id]
        active = self.contenders
        if not stream.active or len(active) <= 1:
            return stream.op_seconds
        return sum(s.op_seconds for s in active)

    def throughput_fraction(self, engine_id: int) -> float:
        """Fraction of solo throughput the stream currently achieves."""
        stream = self._streams[engine_id]
        period = self.effective_period(engine_id)
        if period <= 0:
            return 1.0
        return stream.op_seconds / period

    def extra_wait(self, engine_id: int) -> float:
        """Per-operation queueing delay imposed by other streams."""
        stream = self._streams[engine_id]
        return self.effective_period(engine_id) - stream.op_seconds


class AbiSerializer:
    """Sequential scheduling of ABI requests (§4.2).

    Every request occupies the hypervisor for its service time; the
    counter feeds the profiling surface and the nesting cost model.
    """

    def __init__(self, service_seconds: float = 2e-6):
        self.service_seconds = service_seconds
        self.requests = 0
        self.busy_seconds = 0.0

    def admit(self) -> float:
        """Account for one request; returns its serialized service time."""
        self.requests += 1
        self.busy_seconds += self.service_seconds
        return self.service_seconds


@dataclass
class _DrrClass:
    """One priority class's queue and deficit counter."""

    name: str
    weight: float
    deficit: float = 0.0
    queue: List[object] = field(default_factory=list)


class DeficitRoundRobin:
    """Deficit round robin over weighted priority classes.

    The serving layer's fair-share slicer: each class earns
    ``weight * quantum`` tick credit per round and spends it driving the
    item at the head of its queue; unspent credit carries over, so
    long-run tick shares converge on the weight ratio regardless of how
    unevenly items consume their budgets.  Preemption stays cooperative
    — the caller runs an item for at most the granted budget, then
    either retires it or re-queues it — which is exactly the
    preempt-only-at-quiescence discipline the suspend/resume machinery
    requires.

    The structure is textbook DRR (Shreedhar & Varghese) with ticks in
    place of bytes: ``next_turn`` pops the head of the current class
    when its deficit covers at least one tick, otherwise banks the
    credit and moves on.  A class's deficit resets to zero whenever its
    queue empties, so idle classes cannot hoard credit and starve the
    backlog later.
    """

    def __init__(self, quantum: int = 32,
                 classes: Optional[Dict[str, float]] = None):
        if quantum < 1:
            raise ValueError("quantum must be at least one tick")
        self.quantum = quantum
        self._classes: Dict[str, _DrrClass] = {}
        self._order: List[str] = []
        self._cursor = 0
        #: whether the class at the cursor already earned this round's credit
        self._credited = False
        self.turns = 0
        self.rounds = 0
        for name, weight in (classes or {}).items():
            self.add_class(name, weight)

    def add_class(self, name: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"class {name!r} needs a positive weight")
        if name not in self._classes:
            self._classes[name] = _DrrClass(name, weight)
            self._order.append(name)
        else:
            self._classes[name].weight = weight

    def enqueue(self, name: str, item: object) -> None:
        """Append *item* to class *name* (auto-registered at weight 1)."""
        if name not in self._classes:
            self.add_class(name)
        self._classes[name].queue.append(item)

    def requeue(self, name: str, item: object) -> None:
        """Return a preempted item to the tail of its class queue."""
        self.enqueue(name, item)

    def withdraw(self, name: str, item: object) -> bool:
        """Remove a queued item (cancellation); False if not queued."""
        cls = self._classes.get(name)
        if cls is None or item not in cls.queue:
            return False
        cls.queue.remove(item)
        if not cls.queue:
            cls.deficit = 0.0
        return True

    @property
    def backlog(self) -> int:
        return sum(len(c.queue) for c in self._classes.values())

    def next_turn(self) -> Optional[Tuple[str, object, int]]:
        """Pop the next item to run: ``(class, item, tick_budget)``.

        The budget is the class's accumulated deficit, floored at one
        tick so a class whose weighted quantum rounds below one still
        makes progress.  The item is *not* auto-requeued: the caller
        charges actual consumption via :meth:`charge` and re-queues the
        item itself if it was preempted rather than retired.
        """
        if not self.backlog:
            return None
        scanned = 0
        while scanned < 2 * len(self._order):
            name = self._order[self._cursor % len(self._order)]
            cls = self._classes[name]
            if not cls.queue:
                cls.deficit = 0.0
                self._advance()
                scanned += 1
                continue
            if not self._credited:
                cls.deficit += cls.weight * self.quantum
                self._credited = True
            if cls.deficit >= 1.0:
                item = cls.queue.pop(0)
                self.turns += 1
                budget = max(1, int(cls.deficit))
                return (name, item, budget)
            self._advance()
            scanned += 1
        # Every backlogged class is under one tick of credit; another
        # scan is guaranteed to credit each at least once more.
        return self.next_turn()

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % max(1, len(self._order))
        self._credited = False
        if self._cursor == 0:
            self.rounds += 1

    def charge(self, name: str, ticks: int) -> None:
        """Debit *ticks* actually consumed from *name*'s deficit."""
        cls = self._classes[name]
        cls.deficit -= max(1, ticks)
        if not cls.queue:
            cls.deficit = 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "turns": self.turns,
            "rounds": self.rounds,
            "backlog": self.backlog,
            "classes": {
                name: {"weight": cls.weight,
                       "queued": len(cls.queue),
                       "deficit": round(cls.deficit, 3)}
                for name, cls in self._classes.items()
            },
        }
