"""Hypervisor scheduling: ABI serialization and IO-path time-sharing.

The hypervisor schedules ABI requests sequentially to avoid resource
contention (§4.2).  Temporal multiplexing is what happens when multiple
sub-programs contend on a common IO path between software and hardware
(§4.3, Figure 11): requests are served round-robin, so each stream's
effective per-operation latency is the sum of every active stream's
service time — and a stream with short operations (regex's character
reads) loses more than half its throughput next to one with long
operations (nw's string reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class IoStream:
    """One sub-program's presence on the shared IO path."""

    engine_id: int
    op_seconds: float  # service time of one primitive operation
    active: bool = True


class RoundRobinIoScheduler:
    """Round-robin service of a shared IO resource."""

    def __init__(self):
        self._streams: Dict[int, IoStream] = {}
        self.rounds = 0

    def register(self, engine_id: int, op_seconds: float) -> None:
        self._streams[engine_id] = IoStream(engine_id, op_seconds)

    def unregister(self, engine_id: int) -> None:
        self._streams.pop(engine_id, None)

    def clear(self) -> None:
        """Drop every stream (board quarantine: no IO path remains)."""
        self._streams.clear()

    def set_active(self, engine_id: int, active: bool) -> None:
        if engine_id in self._streams:
            self._streams[engine_id].active = active

    @property
    def contenders(self) -> List[IoStream]:
        return [s for s in self._streams.values() if s.active]

    def effective_period(self, engine_id: int) -> float:
        """Seconds between successive completions for one stream.

        Alone: the stream's own service time.  Contended: one full
        round-robin round — the sum of every active stream's op time.
        """
        stream = self._streams[engine_id]
        active = self.contenders
        if not stream.active or len(active) <= 1:
            return stream.op_seconds
        return sum(s.op_seconds for s in active)

    def throughput_fraction(self, engine_id: int) -> float:
        """Fraction of solo throughput the stream currently achieves."""
        stream = self._streams[engine_id]
        period = self.effective_period(engine_id)
        if period <= 0:
            return 1.0
        return stream.op_seconds / period

    def extra_wait(self, engine_id: int) -> float:
        """Per-operation queueing delay imposed by other streams."""
        stream = self._streams[engine_id]
        return self.effective_period(engine_id) - stream.op_seconds


class AbiSerializer:
    """Sequential scheduling of ABI requests (§4.2).

    Every request occupies the hypervisor for its service time; the
    counter feeds the profiling surface and the nesting cost model.
    """

    def __init__(self, service_seconds: float = 2e-6):
        self.service_seconds = service_seconds
        self.requests = 0
        self.busy_seconds = 0.0

    def admit(self) -> float:
        """Account for one request; returns its serialized service time."""
        self.requests += 1
        self.busy_seconds += self.service_seconds
        return self.service_seconds
