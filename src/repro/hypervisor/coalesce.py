"""Program coalescing: many sub-programs, one monolithic design (§4.1).

The hypervisor's compiler has access to the source of every sub-program
in every connected instance, which is what makes language-level
multitenancy possible: the text of each transformed sub-program is
placed in a module named after its hypervisor identifier, the combined
program concatenates them, and ABI requests route by identifier.

Coalescing is also where Figure 12's clock coupling comes from: the
combined design closes timing as a whole, so one slow application
(adpcm) can drag the global clock — and every co-resident's virtual
frequency — down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.service import CompilerService
from ..core.pipeline import CompiledProgram
from ..fabric.bitstream import text_digest
from ..fabric.device import Device
from ..fabric.synth import ResourceEstimate, SynthOptions, Synthesizer
from ..runtime.backends import synth_options_for


def engine_module_name(engine_id: int) -> str:
    """Deterministic module name for one sub-program in the design."""
    return f"__synergy_engine_{engine_id}"


@dataclass
class CoalescedDesign:
    """The combined program for one reprogramming epoch."""

    text: str
    digest: str
    resources: ResourceEstimate
    clock_hz: float
    engine_programs: Dict[int, CompiledProgram] = field(default_factory=dict)
    per_engine_levels: Dict[int, int] = field(default_factory=dict)
    #: Per-engine closed clocks when the design uses clock domains
    #: (Figure 12's future work); empty for a single global clock.
    engine_clocks_hz: Dict[int, float] = field(default_factory=dict)

    @property
    def engine_ids(self) -> List[int]:
        return sorted(self.engine_programs)

    def clock_for(self, engine_id: int) -> float:
        return self.engine_clocks_hz.get(engine_id, self.clock_hz)


#: Router/interconnect cost per engine (LUTs for ABI request steering).
ROUTER_LUTS_PER_ENGINE = 220
ROUTER_FFS_PER_ENGINE = 96
#: Congestion: each additional co-resident deepens the critical path a
#: little (shared interconnect, placement pressure).
CONGESTION_LEVELS_PER_ENGINE = 1
#: Clock-domain crossing logic per engine (async FIFOs, synchronizers)
#: when the design runs each application in its own domain.
CDC_LUTS_PER_ENGINE = 140
CDC_FFS_PER_ENGINE = 180


def coalesce(programs: Dict[int, CompiledProgram], device: Device,
             anti_congestion: bool = False,
             clock_domains: bool = False,
             compiler: Optional[CompilerService] = None) -> CoalescedDesign:
    """Combine the transformed modules of *programs* into one design.

    With ``clock_domains=True`` (the Figure 12 future-work fix), each
    sub-program closes timing in its own clock domain and pays for
    clock-crossing logic, so a slow arrival (adpcm) no longer drags
    every co-resident's clock down.

    *compiler* interns each member's synthesis estimate in the shared
    artifact store: a membership change then re-estimates only the new
    arrival instead of every surviving tenant, every epoch.
    """
    parts: List[str] = []
    total = ResourceEstimate()
    levels: Dict[int, int] = {}
    for engine_id in sorted(programs):
        program = programs[engine_id]
        # Each sub-program is wrapped in a module named after its
        # hypervisor identifier; the text is the cache-key payload.
        renamed = program.transform.module
        header = f"// engine {engine_id}: {program.name}\n"
        body = program.hardware_text.replace(
            f"module {renamed.name}(", f"module {engine_module_name(engine_id)}(", 1
        )
        parts.append(header + body)
        options = synth_options_for(program, anti_congestion)
        if compiler is not None:
            est = compiler.estimate(renamed, program.env, options,
                                    digest=program.hardware_digest,
                                    env_tag="flatenv")
        else:
            est = Synthesizer(options).estimate(renamed, program.env)
        levels[engine_id] = est.logic_levels
        total.luts += est.luts
        total.ffs += est.ffs
        total.bram_bits += est.bram_bits
    count = len(programs)
    total.luts += ROUTER_LUTS_PER_ENGINE * count
    total.ffs += ROUTER_FFS_PER_ENGINE * count
    congestion = CONGESTION_LEVELS_PER_ENGINE * max(0, count - 1)
    engine_clocks: Dict[int, float] = {}
    if clock_domains and programs:
        # Each engine closes timing in its own placement region: the
        # CDC interfaces decouple it from co-residents' congestion, so
        # per-domain closure sees only the engine's own path.
        total.luts += CDC_LUTS_PER_ENGINE * count
        total.ffs += CDC_FFS_PER_ENGINE * count
        for engine_id, engine_levels in levels.items():
            engine_clocks[engine_id] = device.closed_hz(engine_levels)
        total.logic_levels = max(levels.values()) + congestion
        clock = max(engine_clocks.values())
    else:
        total.logic_levels = max(levels.values(), default=1) + congestion
        clock = device.closed_hz(total.logic_levels)
    text = "\n".join(parts) if parts else "// empty design\n"
    domain_tag = "cdc" if clock_domains else "global"
    return CoalescedDesign(
        text=text,
        digest=text_digest(text + device.name + domain_tag),
        resources=total,
        clock_hz=clock,
        engine_programs=dict(programs),
        per_engine_levels=levels,
        engine_clocks_hz=engine_clocks,
    )
