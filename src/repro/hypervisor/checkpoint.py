"""Checkpoint-at-quiescence: bounded rings of per-tenant contexts.

The hypervisor already detects quiescence (between logical ticks, or at
``$yield`` for Morphlets) — that is exactly when a tenant's state is
portable.  The supervisor captures a :class:`~repro.runtime.runtime.Context`
there every *checkpoint_every* ticks and keeps the last few in a ring
per engine.  Each checkpoint records the tenant program's artifact-store
digest: restore paths look bitstreams and slot codegen up by digest, so
bringing a checkpoint back on a healthy board (or a software engine)
never recompiles anything.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.runtime import Context

#: Default ring depth: enough to survive a checkpoint *during* a crash
#: (the newest entry may describe a state the dying board never reached
#: durably; the one before it is always good).
DEFAULT_RING_DEPTH = 3


@dataclass
class Checkpoint:
    """One tenant context captured at a quiescence point."""

    engine_id: int
    digest: str            #: artifact-store digest of the tenant program
    ticks: int             #: logical time of the quiescence point
    sim_time: float        #: modeled wall time at capture
    context: Context
    save_seconds: float = 0.0  #: modeled cost of taking this checkpoint


class CheckpointRing:
    """Bounded per-engine checkpoint storage, newest last.

    Eviction is strictly oldest-first per engine; dropping an engine
    (tenant finished, or restored elsewhere under a new id) releases
    its whole ring.
    """

    def __init__(self, depth: int = DEFAULT_RING_DEPTH):
        if depth < 1:
            raise ValueError("ring depth must be >= 1")
        self.depth = depth
        self._rings: Dict[int, List[Checkpoint]] = OrderedDict()
        self.saved = 0
        self.evicted = 0

    def push(self, checkpoint: Checkpoint) -> None:
        ring = self._rings.setdefault(checkpoint.engine_id, [])
        ring.append(checkpoint)
        self.saved += 1
        while len(ring) > self.depth:
            ring.pop(0)
            self.evicted += 1

    def latest(self, engine_id: int) -> Optional[Checkpoint]:
        ring = self._rings.get(engine_id)
        return ring[-1] if ring else None

    def history(self, engine_id: int) -> List[Checkpoint]:
        return list(self._rings.get(engine_id, ()))

    def drop(self, engine_id: int) -> None:
        self._rings.pop(engine_id, None)

    def engines(self) -> List[int]:
        return list(self._rings)

    def stats(self) -> Dict[str, int]:
        return {
            "engines": len(self._rings),
            "held": sum(len(r) for r in self._rings.values()),
            "saved": self.saved,
            "evicted": self.evicted,
        }
