"""One polling surface over the fleet's scattered counters.

Every layer below already keeps the ``stats()`` idiom — the
:class:`~repro.hypervisor.hypervisor.Hypervisor` its health and ABI
traffic, the :class:`~repro.hypervisor.supervisor.Supervisor` its
checkpoints/recoveries/cohorts, the
:class:`~repro.compiler.artifacts.ArtifactStore` its per-kind hit
rates — but consumers used to hand-merge the three dictionaries (and
each invented its own shape for the artifact counters).  The serving
layer polls telemetry once per scheduling round, so the merge lives
here, once: :func:`telemetry_snapshot` collects whatever layers the
caller has into a single nested dict, and
:func:`artifact_snapshot` is the one rendering of a
:class:`~repro.compiler.artifacts.KindStats` everybody shares.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..compiler.artifacts import ArtifactStore


def artifact_snapshot(store: ArtifactStore,
                      kinds: Optional[Iterable[str]] = None) -> Dict[str, object]:
    """Per-kind counters of one artifact store as plain dicts.

    *kinds* restricts the snapshot (e.g. just ``KIND_BATCH`` for the
    hypervisor's batched-backend view); omitted, every kind the store
    has seen is included, plus an ``"all"`` aggregate.
    """
    selected = list(kinds) if kinds is not None else list(store.kinds())
    out: Dict[str, object] = {}
    for kind in selected:
        stats = store.stats(kind)
        out[kind] = {
            "entries": store.count(kind),
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "hit_rate": round(stats.hit_rate, 4),
        }
    if kinds is None:
        total = store.stats()
        out["all"] = {
            "entries": store.count(),
            "hits": total.hits,
            "misses": total.misses,
            "evictions": total.evictions,
            "hit_rate": round(total.hit_rate, 4),
        }
    return out


def telemetry_snapshot(supervisor=None, hypervisors=None,
                       store: Optional[ArtifactStore] = None) -> Dict[str, object]:
    """Collect fleet/board/artifact counters into one nested dict.

    Pass whichever layers exist: a supervisor implies its hypervisors
    (an explicit *hypervisors* list overrides), and artifact stores are
    gathered from every hypervisor's compiler service — deduplicated by
    identity, so a fleet sharing one store reports it once.  *store*
    adds (or stands in for) an explicit store.
    """
    snapshot: Dict[str, object] = {}
    if supervisor is not None:
        snapshot["fleet"] = supervisor.stats()
        if hypervisors is None:
            hypervisors = supervisor.hypervisors
    hvs = list(hypervisors) if hypervisors is not None else []
    if hvs:
        snapshot["hypervisors"] = [hv.stats() for hv in hvs]
    stores: List[ArtifactStore] = []
    for hv in hvs:
        candidate = hv.compiler.store
        if all(candidate is not s for s in stores):
            stores.append(candidate)
    if store is not None and all(store is not s for s in stores):
        stores.append(store)
    if stores:
        snapshot["artifacts"] = [artifact_snapshot(s) for s in stores]
    return snapshot
