"""Supervised recovery: checkpoints, quarantine, and tenant restore.

The :class:`Supervisor` closes the reliability loop over a small fleet
of hypervisors.  The layers below it already do the local work — the
ABI channel retries transient faults with capped backoff and converts
hangs into deadline errors; the handshake retries bitstream loads — so
what reaches the supervisor is only what retry cannot fix: a
:class:`~repro.fabric.errors.PersistentFabricError` (dead board,
exhausted retry budget).  Its response is the paper's migration
machinery pointed at disaster recovery:

1. **checkpoint** every tenant at quiescence points (between logical
   ticks), keeping a bounded :class:`~repro.hypervisor.checkpoint.CheckpointRing`
   per engine, keyed by artifact digest so restore never recompiles;
2. on a persistent fault, **quarantine** the afflicted hypervisor
   (board killed, IO streams dropped, admission closed);
3. **restore** every tenant that lived there from its latest
   checkpoint onto a healthy hypervisor — or a software engine when
   none remains — and replay the ticks since the checkpoint.  The
   rebuilt host's display log is seeded from the checkpoint, so the
   crashed run's post-checkpoint output is discarded and the replay
   re-emits it: ``$display`` output stays exactly-once, bit-identical
   to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fabric.errors import FabricError, PersistentFabricError
from ..runtime.cohort import (
    BatchUnsupported, CohortEngine, CohortLaneEngine, UnsupportedBackend,
)
from ..runtime.engine import SoftwareEngine
from ..runtime.runtime import Runtime
from .checkpoint import DEFAULT_RING_DEPTH, Checkpoint, CheckpointRing
from .hypervisor import Hypervisor, HypervisorClient
from .migration import MigrationReport, rehydrate, suspend


@dataclass
class Tenant:
    """One supervised application instance."""

    name: str
    runtime: Runtime
    client: Optional[HypervisorClient] = None
    host: Optional[Hypervisor] = None
    engine_id: Optional[int] = None
    #: checkpoint-ring key; stable across re-placements (engine ids are
    #: per-hypervisor and get reused, so they cannot key the ring)
    key: int = 0
    recoveries: int = 0

    @property
    def on_hardware_path(self) -> bool:
        return self.host is not None


@dataclass
class RecoveryReport:
    """Accounting for one tenant restore."""

    tenant: str
    checkpoint_ticks: int
    crash_ticks: int        #: logical time the crashed runtime had reached
    destination: str        #: device name, or "software"
    restore_seconds: float  #: modeled suspend-point→running latency


class Supervisor:
    """Fault supervisor over a fleet of hypervisors."""

    def __init__(self, hypervisors: List[Hypervisor],
                 checkpoint_every: int = 8,
                 ring_depth: int = DEFAULT_RING_DEPTH,
                 software_fallback: bool = True,
                 journal=None):
        if not hypervisors:
            raise ValueError("a supervisor needs at least one hypervisor")
        self.hypervisors = list(hypervisors)
        self.checkpoint_every = checkpoint_every
        self.ring = CheckpointRing(ring_depth)
        self.software_fallback = software_fallback
        #: optional :class:`~repro.hypervisor.durable.TenantJournal`:
        #: admissions, quiescence checkpoints, and releases are written
        #: ahead to disk so a process restart can recover every tenant
        self.journal = journal
        self.tenants: Dict[str, Tenant] = {}
        self.recoveries: List[RecoveryReport] = []
        self.migrations: List[MigrationReport] = []
        self.quarantines = 0
        self._next_key = 1  #: ring keys survive engine-id reuse across hosts
        #: live vector cohorts (same-digest software tenants, §batched)
        self.cohorts: List[CohortEngine] = []
        self.cohorts_formed = 0
        #: counters accumulated from dissolved cohorts
        self._cohort_divergence = 0
        self._cohort_vector_ticks = 0
        #: quiescent tenants advanced whole spans in one dispatch
        self.idle_fastforwards = 0

    # -- admission ------------------------------------------------------------

    def _healthy_host(self, exclude=()) -> Optional[Hypervisor]:
        for hv in self.hypervisors:
            if hv.healthy and hv not in exclude:
                return hv
        return None

    def admit(self, name: str, source: str, clock: str = "clock",
              software: bool = False, host: Optional[Hypervisor] = None,
              vfs=None) -> Tenant:
        """Admit a tenant: place it and take its baseline checkpoint.

        With *software* set the tenant is never placed on fabric: it
        runs on a software engine under the fleet's lead compiler (so
        same-digest tenants share artifacts) — the shape that cohort
        scheduling (:meth:`run_all`) advances as vector dispatches.
        An explicit *host* pins placement to one hypervisor (the serving
        layer's fleet balancer chooses it); *vfs* pre-loads the tenant's
        virtual filesystem with input files.
        """
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already admitted")
        if software:
            host = None
        elif host is None:
            host = self._healthy_host()
        elif not host.healthy:
            raise PersistentFabricError(
                f"requested host {host.device.name} is quarantined")
        if host is None and not (software or self.software_fallback):
            raise PersistentFabricError("no healthy hypervisor to admit onto")
        lead = self.hypervisors[0]
        compiler = (host.compiler if host is not None
                    else lead.compiler if software else None)
        backend = (host.sim_backend if host is not None
                   else lead.sim_backend if software else None)
        runtime = Runtime(source, name=name, clock=clock, compiler=compiler,
                          sim_backend=backend, vfs=vfs)
        tenant = Tenant(name=name, runtime=runtime)
        tenant.key = self._next_key  # ring key, stable across re-placement
        self._next_key += 1
        if host is not None:
            self._place(tenant, host)
        self.tenants[name] = tenant
        if self.journal is not None:
            self.journal.admit(name, digest=runtime.program.digest,
                               source=runtime.program.source, clock=clock)
        self._checkpoint(tenant)  # tick-0 baseline: recovery always has one
        return tenant

    def admit_runtime(self, name: str, runtime: Runtime,
                      host: Optional[Hypervisor] = None) -> Tenant:
        """Admit an already-built runtime (the restart-recovery path).

        Mirrors :meth:`admit` placement, but the runtime arrives
        rehydrated from a durable checkpoint instead of compiled from
        source — its display log is already seeded, its state already
        restored.  The baseline checkpoint lands at the *recovered*
        tick, so the board-death recovery machinery keeps working for
        the rest of the tenant's life.
        """
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already admitted")
        if host is not None and not host.healthy:
            raise PersistentFabricError(
                f"requested host {host.device.name} is quarantined")
        tenant = Tenant(name=name, runtime=runtime)
        tenant.key = self._next_key
        self._next_key += 1
        if host is not None:
            self._place(tenant, host)
        self.tenants[name] = tenant
        if self.journal is not None:
            self.journal.admit(name, digest=runtime.program.digest,
                               source=runtime.program.source,
                               clock=runtime.clock)
        self._checkpoint(tenant)
        return tenant

    def release(self, name: str) -> None:
        """Retire a tenant: free its fabric slot and drop its checkpoints.

        A quarantined (or otherwise failing) host cannot veto the
        release — the tenant is gone from the supervisor's books either
        way, and a dead board's slots die with the board.
        """
        tenant = self.tenants.pop(name, None)
        if tenant is None:
            return
        if isinstance(tenant.runtime.engine, CohortLaneEngine):
            self._extract_tenant(tenant)
            self._prune_cohorts()
        if tenant.client is not None and tenant.engine_id is not None:
            try:
                tenant.client.release(tenant.engine_id)
            except FabricError:
                pass
        self.ring.drop(tenant.key)
        if self.journal is not None:
            self.journal.terminal(name, "released")
            self.journal.drop_snapshots(name)

    def _place(self, tenant: Tenant, host: Hypervisor) -> None:
        client = host.connect(tenant.name)
        placement = tenant.runtime.attach(client)
        tenant.client = client
        tenant.host = host
        tenant.engine_id = placement.engine_id

    # -- checkpoint discipline ---------------------------------------------------

    def checkpoint(self, name: str) -> Checkpoint:
        """Checkpoint one tenant now (must be at a quiescence point).

        The serving layer calls this at preemption boundaries so a
        sliced-out tenant always has a restore point no older than its
        last turn.  Cohort members must have drained their banked ticks
        first (:meth:`drain_banked`) — a lane snapshot mid-bank raises.
        """
        return self._checkpoint(self.tenants[name])

    def _checkpoint(self, tenant: Tenant) -> Checkpoint:
        runtime = tenant.runtime
        t0 = runtime.sim_time
        context = suspend(runtime)
        checkpoint = Checkpoint(
            engine_id=tenant.key,
            digest=runtime.program.hardware_digest,
            ticks=runtime.ticks,
            sim_time=runtime.sim_time,
            context=context,
            save_seconds=runtime.sim_time - t0,
        )
        self.ring.push(checkpoint)
        if self.journal is not None:
            self.journal.checkpoint(tenant.name, checkpoint)
        return checkpoint

    # -- execution ------------------------------------------------------------

    def run(self, name: str, ticks: int) -> Runtime:
        """Drive a tenant *ticks* logical ticks with checkpoints and
        recovery; returns the (possibly re-hosted) runtime."""
        tenant = self.tenants[name]
        target = tenant.runtime.ticks + ticks
        while tenant.runtime.ticks < target and not tenant.runtime.finished:
            remaining = target - tenant.runtime.ticks
            chunk = self._chunk_for(tenant.runtime, remaining)
            try:
                tenant.runtime.tick(chunk)
                self._checkpoint(tenant)
            except FabricError as err:
                self._recover_from(tenant, err)
        return tenant.runtime

    def _chunk_for(self, runtime: Runtime, remaining: int) -> int:
        """Checkpoint-bounded chunk size, with idle fast-forward.

        A provably quiescent tenant advances its whole remaining span
        in one near-free dispatch instead of ``remaining /
        checkpoint_every`` no-op turns: intermediate checkpoints of an
        idle tenant would all capture identical state, so skipping them
        loses nothing (the post-span checkpoint still lands).  The
        quiescence proof comes from the engine and already counts
        pending NBA shadow-queue entries as activity.
        """
        if remaining > self.checkpoint_every and runtime.is_idle():
            self.idle_fastforwards += 1
            return remaining
        return min(self.checkpoint_every, remaining)

    # -- cohort scheduling (batched backend) -----------------------------------

    def form_cohorts(self, min_size: int = 2,
                     names: Optional[List[str]] = None) -> int:
        """Group same-digest software tenants into vector cohorts.

        Formation happens at a quiescence boundary (between logical
        ticks): each member's scalar state is snapshot into a cohort
        lane and its runtime's engine swapped for the lane engine —
        ``Runtime.tick`` then drives the whole cohort through tick
        banking.  Programs outside the vector subset (or a missing
        NumPy) leave their group on scalar engines.  *names* restricts
        formation to a subset of tenants (the serving layer forms
        cohorts per priority class, so one class's lockstep schedule
        never couples to another's).  Returns the number of cohorts
        formed.
        """
        groups: Dict[str, List[Tenant]] = {}
        pool = (self.tenants.values() if names is None
                else [self.tenants[n] for n in names if n in self.tenants])
        for tenant in pool:
            runtime = tenant.runtime
            if (runtime.backend is not None or runtime.finished
                    or runtime.engine.kind != "software"
                    or isinstance(runtime.engine, CohortLaneEngine)):
                continue
            groups.setdefault(runtime.program.digest, []).append(tenant)
        formed = 0
        for members in groups.values():
            if len(members) < min_size:
                continue
            lead = members[0].runtime
            try:
                engine = CohortEngine(lead.program, compiler=lead.compiler,
                                      opt_level=lead.opt_level)
            except (BatchUnsupported, UnsupportedBackend):
                continue
            for tenant in members:
                runtime = tenant.runtime
                state = runtime.engine.snapshot()
                member = engine.admit(runtime.host, state=state)
                # Engine snapshots carry no $time; copy it across so a
                # formed tenant is indistinguishable from a scalar run.
                member.time = runtime.engine.sim.time
                runtime.engine = member
            self.cohorts.append(engine)
            self.cohorts_formed += 1
            formed += 1
        return formed

    def dissolve_cohorts(self) -> None:
        """Extract every cohort member back onto a scalar engine."""
        for tenant in self.tenants.values():
            if isinstance(tenant.runtime.engine, CohortLaneEngine):
                self._extract_tenant(tenant)
        for engine in self.cohorts:
            self._cohort_divergence += engine.divergence
            self._cohort_vector_ticks += engine.vector_ticks
        self.cohorts = []

    def in_cohort(self, name: str) -> bool:
        tenant = self.tenants.get(name)
        return (tenant is not None
                and isinstance(tenant.runtime.engine, CohortLaneEngine))

    def extract(self, name: str) -> None:
        """Pull one tenant out of its cohort onto a scalar engine.

        Must happen at a quiescence boundary with the tenant's bank
        drained (lockstep schedules guarantee this between turns).  A
        cohort left with one lane is dissolved outright — a vector
        dispatch over one lane is pure overhead.
        """
        tenant = self.tenants[name]
        if not isinstance(tenant.runtime.engine, CohortLaneEngine):
            return
        self._extract_tenant(tenant)
        self._prune_cohorts()

    def _prune_cohorts(self) -> None:
        """Dissolve degenerate cohorts and retire empty ones."""
        survivors: List[CohortEngine] = []
        for engine in self.cohorts:
            if engine.size <= 1:
                for tenant in list(self.tenants.values()):
                    lane = tenant.runtime.engine
                    if (isinstance(lane, CohortLaneEngine)
                            and lane.engine is engine):
                        self._extract_tenant(tenant)
                self._cohort_divergence += engine.divergence
                self._cohort_vector_ticks += engine.vector_ticks
            else:
                survivors.append(engine)
        self.cohorts = survivors

    def drain_banked(self, name: str) -> int:
        """Settle a finished cohort member's banked ticks (see
        :meth:`_drain_banked`); returns the number folded in."""
        return self._drain_banked(self.tenants[name].runtime)

    def _extract_tenant(self, tenant: Tenant) -> None:
        """One tenant's lane → a scalar :class:`SoftwareEngine`.

        The replacement boots quietly (its initial blocks already ran
        when the tenant started) and restores through the simulator's
        ``restore_state`` contract — edge re-detection suppressed, so a
        lane captured mid-``$finish`` tick (clock still high) does not
        replay the finishing edge into the fresh engine.
        """
        runtime = tenant.runtime
        lane_engine = runtime.engine
        self._drain_banked(runtime)
        lane_time = lane_engine.time
        state = lane_engine.engine.detach(lane_engine)
        engine = SoftwareEngine(runtime.program, runtime.host,
                                backend=runtime.sim_backend,
                                compiler=runtime.compiler,
                                quiet_init=True,
                                opt_level=runtime.opt_level)
        engine.sim.restore_state({
            "store": state,
            "vfs": runtime.host.vfs.snapshot(),
            "time": lane_time,
        })
        engine.sim.step()
        runtime.engine = engine

    def _drain_banked(self, runtime: Runtime) -> int:
        """Settle a finished lane's un-consumed banked ticks.

        A lane that ``$finish``es during another lane's vector dispatch
        holds banked ticks its runtime will never consume (the tick
        loop exits on ``finished``).  Those banked entries are exactly
        the ticks a scalar run *would* have executed before stopping,
        so folding them into the runtime's counters reproduces the
        scalar accounting bit-for-bit.
        """
        engine = runtime.engine
        if not isinstance(engine, CohortLaneEngine) or not engine._banked:
            return 0
        if not runtime.finished:
            raise PersistentFabricError(
                f"runtime {runtime.name!r} holds banked ticks while "
                "unfinished: cohort members must be driven in lockstep"
            )
        drained = len(engine._banked)
        runtime.sim_time += sum(engine._banked)
        runtime.ticks += drained
        engine._banked.clear()
        return drained

    def run_all(self, ticks: int, form: bool = True, min_size: int = 2) -> None:
        """Drive every tenant *ticks* logical ticks in lockstep.

        Same-digest software tenants are formed into cohorts first (at
        the quiescence boundary) and advance one vector dispatch per
        tick; everyone else runs scalar.  Checkpoints land every
        ``checkpoint_every`` ticks as in :meth:`run`, banked ticks are
        drained at each boundary so the checkpoints stay consistent,
        and cohorts are dissolved back onto scalar engines on exit —
        faults and recovery therefore see only ordinary engines.
        """
        if form:
            self.form_cohorts(min_size=min_size)
        try:
            targets = {name: tenant.runtime.ticks + ticks
                       for name, tenant in self.tenants.items()}
            progressed = True
            while progressed:
                progressed = False
                for name, tenant in self.tenants.items():
                    runtime = tenant.runtime
                    if runtime.finished:
                        if self._drain_banked(runtime):
                            self._checkpoint(tenant)
                        continue
                    remaining = targets[name] - runtime.ticks
                    if remaining <= 0:
                        continue
                    chunk = self._chunk_for(runtime, remaining)
                    try:
                        runtime.tick(chunk)
                        self._drain_banked(runtime)
                        self._checkpoint(tenant)
                    except FabricError as err:
                        self._recover_from(tenant, err)
                    progressed = True
        finally:
            self.dissolve_cohorts()

    # -- migration (load balancing) --------------------------------------------

    def migrate_tenant(self, name: str,
                       destination: Optional[Hypervisor] = None) -> MigrationReport:
        """Move a live tenant to *destination* (or onto software).

        The serving layer's rebalancer: suspend at quiescence, release
        the source slot (a dead source cannot veto), rebuild the runtime
        from the suspended context with exactly-once ``$display``, and
        re-place on the destination — digest-keyed artifacts make the
        new placement a cache hit, so no recompilation happens here.
        """
        tenant = self.tenants[name]
        if isinstance(tenant.runtime.engine, CohortLaneEngine):
            self.extract(name)
        old = tenant.runtime
        source_label = (tenant.host.device.name
                        if tenant.host is not None else "software")
        if destination is not None and not destination.healthy:
            raise PersistentFabricError(
                f"migration destination {destination.device.name} is quarantined")
        t0 = old.sim_time
        context = suspend(old)
        suspend_cost = old.sim_time - t0
        if tenant.client is not None and tenant.engine_id is not None:
            try:
                tenant.client.release(tenant.engine_id)
            except FabricError:
                pass
        compiler = (destination.compiler if destination is not None
                    else old.compiler)
        backend = (destination.sim_backend if destination is not None
                   else old.sim_backend)
        runtime = rehydrate(context, name=tenant.name, clock=old.clock,
                            compiler=compiler, sim_backend=backend,
                            start_time=old.sim_time)
        reconfig = (destination.device.reconfig_seconds
                    if destination is not None else 0.0)
        resume_cost = runtime.costs.restore_seconds(
            runtime.program.state.total_bits, reconfig)
        runtime.sim_time += resume_cost
        tenant.runtime = runtime
        tenant.client = None
        tenant.host = None
        tenant.engine_id = None
        if destination is not None:
            self._place(tenant, destination)
        report = MigrationReport(
            source=source_label,
            destination=(destination.device.name
                         if destination is not None else "software"),
            state_bits=runtime.program.state.total_bits,
            suspend_seconds=suspend_cost,
            resume_seconds=resume_cost,
        )
        self.migrations.append(report)
        return report

    # -- recovery --------------------------------------------------------------

    def recover_from(self, name: str, err: FabricError) -> None:
        """Public recovery entry: quarantine *name*'s host and restore
        every tenant it carried (see :meth:`_recover_from`)."""
        self._recover_from(self.tenants[name], err)

    def _recover_from(self, tenant: Tenant, err: FabricError) -> None:
        """Quarantine the faulted host and restore everyone it carried."""
        host = tenant.host
        if host is None:
            # A software tenant has no board to lose; a fabric error
            # here is protocol misuse, not something restore can fix.
            raise err
        if not host.quarantined:
            self.quarantines += 1
        host.quarantine()
        victims = [t for t in self.tenants.values() if t.host is host]
        for victim in victims:
            # Recovery destinations can die too (cascading failure):
            # quarantine each one that faults mid-restore and move on
            # to the next healthy host, ultimately software.
            while True:
                destination = self._healthy_host(exclude=(host,))
                if destination is None and not self.software_fallback:
                    raise PersistentFabricError(
                        "no healthy hypervisor left to restore onto"
                    ) from err
                try:
                    self._restore(victim, destination)
                    break
                except FabricError:
                    if destination is None:
                        raise  # a software restore fault is not a board loss
                    if not destination.quarantined:
                        self.quarantines += 1
                    destination.quarantine()

    def _restore(self, tenant: Tenant, destination: Optional[Hypervisor]) -> None:
        checkpoint = self.ring.latest(tenant.key)
        if checkpoint is None:
            raise PersistentFabricError(
                f"tenant {tenant.name!r} has no checkpoint to restore"
            )
        crashed = tenant.runtime
        compiler = (destination.compiler if destination is not None
                    else crashed.compiler)
        # The crashed runtime's clock already absorbed the failure's
        # detection costs (deadline waits, backoff); recovery continues
        # from there, never from the checkpoint's (earlier) timestamp.
        runtime = rehydrate(checkpoint.context, name=tenant.name,
                            clock=crashed.clock, compiler=compiler,
                            sim_backend=(destination.sim_backend
                                         if destination else crashed.sim_backend),
                            start_time=max(crashed.sim_time,
                                           checkpoint.sim_time))
        restore_started = runtime.sim_time
        reconfig = (destination.device.reconfig_seconds
                    if destination is not None else 0.0)
        runtime.sim_time += runtime.costs.restore_seconds(
            runtime.program.state.total_bits, reconfig
        )
        tenant.runtime = runtime
        tenant.client = None
        tenant.host = None
        tenant.engine_id = None
        if destination is not None:
            # Digest-keyed artifacts: this placement is a cache hit in
            # the shared store, so no recompilation happens here.
            self._place(tenant, destination)
        tenant.recoveries += 1
        self.recoveries.append(RecoveryReport(
            tenant=tenant.name,
            checkpoint_ticks=checkpoint.ticks,
            crash_ticks=crashed.ticks,
            destination=(destination.device.name
                         if destination is not None else "software"),
            restore_seconds=runtime.sim_time - restore_started,
        ))

    # -- reporting --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Fleet health: the ``stats()``/``utilization()`` idiom."""
        return {
            "tenants": len(self.tenants),
            "hypervisors": len(self.hypervisors),
            "healthy_hypervisors": sum(h.healthy for h in self.hypervisors),
            "quarantines": self.quarantines,
            "recoveries": len(self.recoveries),
            "migrations": len(self.migrations),
            "idle_fastforwards": self.idle_fastforwards,
            "checkpoints": self.ring.stats(),
            "retry": [h.retry.stats() for h in self.hypervisors],
            "cohorts": {
                "active": len(self.cohorts),
                "formed": self.cohorts_formed,
                "sizes": [engine.size for engine in self.cohorts],
                "lane_divergence": self._cohort_divergence + sum(
                    engine.divergence for engine in self.cohorts),
                "vector_ticks": self._cohort_vector_ticks + sum(
                    engine.vector_ticks for engine in self.cohorts),
            },
        }
