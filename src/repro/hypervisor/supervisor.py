"""Supervised recovery: checkpoints, quarantine, and tenant restore.

The :class:`Supervisor` closes the reliability loop over a small fleet
of hypervisors.  The layers below it already do the local work — the
ABI channel retries transient faults with capped backoff and converts
hangs into deadline errors; the handshake retries bitstream loads — so
what reaches the supervisor is only what retry cannot fix: a
:class:`~repro.fabric.errors.PersistentFabricError` (dead board,
exhausted retry budget).  Its response is the paper's migration
machinery pointed at disaster recovery:

1. **checkpoint** every tenant at quiescence points (between logical
   ticks), keeping a bounded :class:`~repro.hypervisor.checkpoint.CheckpointRing`
   per engine, keyed by artifact digest so restore never recompiles;
2. on a persistent fault, **quarantine** the afflicted hypervisor
   (board killed, IO streams dropped, admission closed);
3. **restore** every tenant that lived there from its latest
   checkpoint onto a healthy hypervisor — or a software engine when
   none remains — and replay the ticks since the checkpoint.  The
   rebuilt host's display log is seeded from the checkpoint, so the
   crashed run's post-checkpoint output is discarded and the replay
   re-emits it: ``$display`` output stays exactly-once, bit-identical
   to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fabric.errors import FabricError, PersistentFabricError
from ..runtime.runtime import Runtime
from .checkpoint import DEFAULT_RING_DEPTH, Checkpoint, CheckpointRing
from .hypervisor import Hypervisor, HypervisorClient
from .migration import rehydrate, suspend


@dataclass
class Tenant:
    """One supervised application instance."""

    name: str
    runtime: Runtime
    client: Optional[HypervisorClient] = None
    host: Optional[Hypervisor] = None
    engine_id: Optional[int] = None
    #: checkpoint-ring key; stable across re-placements (engine ids are
    #: per-hypervisor and get reused, so they cannot key the ring)
    key: int = 0
    recoveries: int = 0

    @property
    def on_hardware_path(self) -> bool:
        return self.host is not None


@dataclass
class RecoveryReport:
    """Accounting for one tenant restore."""

    tenant: str
    checkpoint_ticks: int
    crash_ticks: int        #: logical time the crashed runtime had reached
    destination: str        #: device name, or "software"
    restore_seconds: float  #: modeled suspend-point→running latency


class Supervisor:
    """Fault supervisor over a fleet of hypervisors."""

    def __init__(self, hypervisors: List[Hypervisor],
                 checkpoint_every: int = 8,
                 ring_depth: int = DEFAULT_RING_DEPTH,
                 software_fallback: bool = True):
        if not hypervisors:
            raise ValueError("a supervisor needs at least one hypervisor")
        self.hypervisors = list(hypervisors)
        self.checkpoint_every = checkpoint_every
        self.ring = CheckpointRing(ring_depth)
        self.software_fallback = software_fallback
        self.tenants: Dict[str, Tenant] = {}
        self.recoveries: List[RecoveryReport] = []
        self.quarantines = 0
        self._next_key = 1  #: ring keys survive engine-id reuse across hosts

    # -- admission ------------------------------------------------------------

    def _healthy_host(self, exclude=()) -> Optional[Hypervisor]:
        for hv in self.hypervisors:
            if hv.healthy and hv not in exclude:
                return hv
        return None

    def admit(self, name: str, source: str, clock: str = "clock") -> Tenant:
        """Admit a tenant: place it and take its baseline checkpoint."""
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already admitted")
        host = self._healthy_host()
        if host is None and not self.software_fallback:
            raise PersistentFabricError("no healthy hypervisor to admit onto")
        compiler = host.compiler if host is not None else None
        runtime = Runtime(source, name=name, clock=clock, compiler=compiler,
                          sim_backend=host.sim_backend if host else None)
        tenant = Tenant(name=name, runtime=runtime)
        tenant.key = self._next_key  # ring key, stable across re-placement
        self._next_key += 1
        if host is not None:
            self._place(tenant, host)
        self.tenants[name] = tenant
        self._checkpoint(tenant)  # tick-0 baseline: recovery always has one
        return tenant

    def _place(self, tenant: Tenant, host: Hypervisor) -> None:
        client = host.connect(tenant.name)
        placement = tenant.runtime.attach(client)
        tenant.client = client
        tenant.host = host
        tenant.engine_id = placement.engine_id

    # -- checkpoint discipline ---------------------------------------------------

    def _checkpoint(self, tenant: Tenant) -> Checkpoint:
        runtime = tenant.runtime
        t0 = runtime.sim_time
        context = suspend(runtime)
        checkpoint = Checkpoint(
            engine_id=tenant.key,
            digest=runtime.program.hardware_digest,
            ticks=runtime.ticks,
            sim_time=runtime.sim_time,
            context=context,
            save_seconds=runtime.sim_time - t0,
        )
        self.ring.push(checkpoint)
        return checkpoint

    # -- execution ------------------------------------------------------------

    def run(self, name: str, ticks: int) -> Runtime:
        """Drive a tenant *ticks* logical ticks with checkpoints and
        recovery; returns the (possibly re-hosted) runtime."""
        tenant = self.tenants[name]
        target = tenant.runtime.ticks + ticks
        while tenant.runtime.ticks < target and not tenant.runtime.finished:
            chunk = min(self.checkpoint_every, target - tenant.runtime.ticks)
            try:
                tenant.runtime.tick(chunk)
                self._checkpoint(tenant)
            except FabricError as err:
                self._recover_from(tenant, err)
        return tenant.runtime

    # -- recovery --------------------------------------------------------------

    def _recover_from(self, tenant: Tenant, err: FabricError) -> None:
        """Quarantine the faulted host and restore everyone it carried."""
        host = tenant.host
        if host is None:
            # A software tenant has no board to lose; a fabric error
            # here is protocol misuse, not something restore can fix.
            raise err
        if not host.quarantined:
            self.quarantines += 1
        host.quarantine()
        victims = [t for t in self.tenants.values() if t.host is host]
        destination = self._healthy_host(exclude=(host,))
        if destination is None and not self.software_fallback:
            raise PersistentFabricError(
                "no healthy hypervisor left to restore onto"
            ) from err
        for victim in victims:
            self._restore(victim, destination)

    def _restore(self, tenant: Tenant, destination: Optional[Hypervisor]) -> None:
        checkpoint = self.ring.latest(tenant.key)
        if checkpoint is None:
            raise PersistentFabricError(
                f"tenant {tenant.name!r} has no checkpoint to restore"
            )
        crashed = tenant.runtime
        compiler = (destination.compiler if destination is not None
                    else crashed.compiler)
        # The crashed runtime's clock already absorbed the failure's
        # detection costs (deadline waits, backoff); recovery continues
        # from there, never from the checkpoint's (earlier) timestamp.
        runtime = rehydrate(checkpoint.context, name=tenant.name,
                            clock=crashed.clock, compiler=compiler,
                            sim_backend=(destination.sim_backend
                                         if destination else crashed.sim_backend),
                            start_time=max(crashed.sim_time,
                                           checkpoint.sim_time))
        restore_started = runtime.sim_time
        reconfig = (destination.device.reconfig_seconds
                    if destination is not None else 0.0)
        runtime.sim_time += runtime.costs.restore_seconds(
            runtime.program.state.total_bits, reconfig
        )
        tenant.runtime = runtime
        tenant.client = None
        tenant.host = None
        tenant.engine_id = None
        if destination is not None:
            # Digest-keyed artifacts: this placement is a cache hit in
            # the shared store, so no recompilation happens here.
            self._place(tenant, destination)
        tenant.recoveries += 1
        self.recoveries.append(RecoveryReport(
            tenant=tenant.name,
            checkpoint_ticks=checkpoint.ticks,
            crash_ticks=crashed.ticks,
            destination=(destination.device.name
                         if destination is not None else "software"),
            restore_seconds=runtime.sim_time - restore_started,
        ))

    # -- reporting --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Fleet health: the ``stats()``/``utilization()`` idiom."""
        return {
            "tenants": len(self.tenants),
            "hypervisors": len(self.hypervisors),
            "healthy_hypervisors": sum(h.healthy for h in self.hypervisors),
            "quarantines": self.quarantines,
            "recoveries": len(self.recoveries),
            "checkpoints": self.ring.stats(),
            "retry": [h.retry.stats() for h in self.hypervisors],
        }
