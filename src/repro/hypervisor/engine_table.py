"""The hypervisor's engine table (paper §4.1, Figure 6).

Each connected runtime instance sends sub-program source over its
connection; the hypervisor compiles it into the combined design and
hands back a unique identifier.  The engine table is the indirection
that routes subsequent ABI requests to the right module of the
monolithic program — and the isolation boundary: an instance only ever
learns its own identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..amorphos.morphlet import Morphlet, ProtectionDomain
from ..core.pipeline import CompiledProgram


@dataclass
class EngineRecord:
    """One registered sub-program."""

    engine_id: int
    instance: str
    domain: ProtectionDomain
    program: CompiledProgram
    morphlet: Optional[Morphlet] = None
    #: Flagged when the owning application finishes; removed from the
    #: combined design at the next recompilation (§4.1).
    retired: bool = False


class EngineTable:
    """Identifier allocation and routing for connected sub-programs."""

    def __init__(self):
        self._records: Dict[int, EngineRecord] = {}
        self._next_id = 1

    def register(self, instance: str, domain: ProtectionDomain,
                 program: CompiledProgram) -> EngineRecord:
        record = EngineRecord(self._next_id, instance, domain, program)
        self._next_id += 1
        self._records[record.engine_id] = record
        return record

    def lookup(self, engine_id: int) -> EngineRecord:
        try:
            return self._records[engine_id]
        except KeyError:
            raise KeyError(f"unknown engine {engine_id}") from None

    def retire(self, engine_id: int) -> None:
        """Flag for removal at the next recompilation."""
        self._records[engine_id].retired = True

    def sweep(self) -> List[EngineRecord]:
        """Drop retired records; returns the survivors."""
        retired = [eid for eid, rec in self._records.items() if rec.retired]
        for eid in retired:
            del self._records[eid]
        return list(self._records.values())

    @property
    def active(self) -> List[EngineRecord]:
        return [rec for rec in self._records.values() if not rec.retired]

    def owned_by(self, domain: ProtectionDomain) -> List[EngineRecord]:
        return [rec for rec in self._records.values() if rec.domain is domain]

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, engine_id: int) -> bool:
        return engine_id in self._records
