"""Synergy hypervisor: coalescing, scheduling, handshake, migration."""

from .engine_table import EngineRecord, EngineTable
from .coalesce import CoalescedDesign, coalesce, engine_module_name
from .scheduler import (
    AbiSerializer, DeficitRoundRobin, IoStream, RoundRobinIoScheduler,
)
from .handshake import HANDSHAKE_BANDWIDTH_BITS_S, HandshakeReport, state_safe_reprogram
from .hypervisor import CapacityError, Hypervisor, HypervisorClient
from .migration import MigrationReport, migrate, rehydrate, resume, suspend
from .checkpoint import DEFAULT_RING_DEPTH, Checkpoint, CheckpointRing
from .durable import (
    JournalError, JournalImage, RecoveredTenant, RecoveryError,
    TenantJournal,
)
from .supervisor import RecoveryReport, Supervisor, Tenant
from .telemetry import artifact_snapshot, telemetry_snapshot

__all__ = [
    "EngineRecord", "EngineTable",
    "CoalescedDesign", "coalesce", "engine_module_name",
    "AbiSerializer", "DeficitRoundRobin", "IoStream", "RoundRobinIoScheduler",
    "HANDSHAKE_BANDWIDTH_BITS_S", "HandshakeReport", "state_safe_reprogram",
    "CapacityError", "Hypervisor", "HypervisorClient",
    "MigrationReport", "migrate", "rehydrate", "resume", "suspend",
    "DEFAULT_RING_DEPTH", "Checkpoint", "CheckpointRing",
    "JournalError", "JournalImage", "RecoveredTenant", "RecoveryError",
    "TenantJournal",
    "RecoveryReport", "Supervisor", "Tenant",
    "artifact_snapshot", "telemetry_snapshot",
]
