"""Durable tenancy: the write-ahead journal + checkpoint store.

PR 6's :class:`~repro.hypervisor.checkpoint.CheckpointRing` survives
board deaths; this module survives *process* deaths.  Two artifacts on
disk, both built from the same self-verifying frame discipline as the
:mod:`~repro.compiler.diskstore` tier:

* **The tenant journal** (``journal.wal``): an append-only,
  fsync-per-record log of tenant lifecycle facts — ``job`` (a
  submission accepted by the serve frontend), ``admit`` (the
  supervisor placed it), ``ckpt`` (a quiescence checkpoint landed,
  naming its snapshot file), ``done`` (retired, with status).  Each
  record is one line: ``RPJ1 <crc32> <json>``.  Replay truncates a
  torn tail (the classic half-written last record of a crash),
  *skips* mid-log records whose CRC fails (latent corruption), and
  folds the survivors into per-tenant images.
* **The checkpoint store** (``snapshots/``): one file per retained
  checkpoint, holding the pickled quiescence context in the
  digest-keyed shape of :class:`~repro.hypervisor.checkpoint.Checkpoint`.
  Snapshots are written to a temp file and atomically renamed, then
  *read back and verified* before the journal records them — an
  injected (or real) torn/bit-rotted write is detected immediately and
  retried, so a recorded snapshot is one that was actually durable.
  Retention keeps the newest few per tenant (a bounded on-disk ring).

Write criticality is two-tier, mirroring what recovery can tolerate:
``admit``/``job``/``done`` records are **critical** (verified, retried
— losing one silently strands or resurrects a tenant), while ``ckpt``
records and snapshot files are **lossy-OK** (a failed checkpoint write
just means recovery replays from the previous one).

:class:`RecoveryError` is the typed verdict for a tenant the journal
knows about but cannot restore — the serving layer fails its handle
with it instead of silently dropping the tenant.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compiler.diskstore import (
    corrupt_for_fault, dumps_artifact, durable_write, frame_payload,
    loads_artifact, unframe_payload,
)
from ..fabric.errors import PersistentFabricError
from ..fabric.faults import FaultPlan, default_fault_plan
from .checkpoint import Checkpoint

#: Journal line magic; bump on record-format changes.
JOURNAL_MAGIC = b"RPJ1"
#: On-disk checkpoints retained per tenant (newest first wins).
DEFAULT_KEEP_SNAPSHOTS = 4


class JournalError(PersistentFabricError):
    """A critical journal write could not be made durable."""


class RecoveryError(PersistentFabricError):
    """A journaled tenant could not be restored after a restart.

    Raised (or, in the serving layer, set on the tenant's handle) when
    replay finds a tenant in flight but no verifiable checkpoint — or
    re-admission itself fails.  Persistent by design: retrying recovery
    without new information cannot succeed.
    """

    def __init__(self, message: str, tenant: Optional[str] = None):
        super().__init__(message)
        self.tenant = tenant


@dataclass
class RecoveredTenant:
    """One tenant's journal image after replay."""

    name: str
    digest: str = ""
    source: str = ""
    clock: str = "clock"
    priority: str = "normal"
    principal: str = "default"
    target: Optional[int] = None
    seq: int = 0
    #: the supervisor placed it (an ``admit`` record survived)
    admitted: bool = False
    #: recorded snapshot filenames, oldest first
    snapshots: List[str] = field(default_factory=list)
    #: retirement status, or ``None`` while in flight
    terminal: Optional[str] = None


@dataclass
class JournalImage:
    """Everything one replay recovered, plus its damage report."""

    tenants: "OrderedDict[str, RecoveredTenant]" = field(
        default_factory=OrderedDict)
    records: int = 0
    #: mid-log records dropped by CRC/parse failure
    skipped: int = 0
    #: bytes of torn tail physically truncated
    truncated_bytes: int = 0

    def in_flight(self) -> List[RecoveredTenant]:
        """Tenants the crash caught mid-lifecycle, in admission order."""
        return [t for t in self.tenants.values() if t.terminal is None]


class TenantJournal:
    """Write-ahead journal + durable checkpoint store for one fleet.

    One journal belongs to one serving process at a time (single
    writer); recovery opens the same directory from the next process.
    All writes are fsync'd; critical records and snapshots are
    additionally write-verified and retried under injected disk faults.
    """

    def __init__(self, root, faults: Optional[FaultPlan] = None,
                 write_retries: int = 8,
                 keep_snapshots: int = DEFAULT_KEEP_SNAPSHOTS):
        self.root = os.fspath(root)
        self.snapshot_dir = os.path.join(self.root, "snapshots")
        os.makedirs(self.snapshot_dir, exist_ok=True)
        self.path = os.path.join(self.root, "journal.wal")
        self.faults = faults if faults is not None else default_fault_plan()
        self.write_retries = write_retries
        self.keep_snapshots = keep_snapshots
        self._fh = None
        self._snap_seq = sum(1 for f in os.scandir(self.snapshot_dir)
                             if f.name.endswith(".ckpt"))
        #: appends that landed corrupted (injected or real) and were
        #: either retried (critical) or abandoned (lossy)
        self.corrupt_writes = 0
        self.write_errors = 0
        self.records_written = 0
        self.snapshots_written = 0
        self.snapshot_retries = 0

    # -- the append path ---------------------------------------------------

    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "ab")
        return self._fh

    @staticmethod
    def _encode(record: Dict[str, object]) -> bytes:
        body = json.dumps(record, sort_keys=True,
                          separators=(",", ":")).encode()
        return b"%s %08x %s\n" % (JOURNAL_MAGIC, zlib.crc32(body), body)

    def _append(self, record: Dict[str, object], critical: bool) -> bool:
        """Append one record, fsync'd.

        A *critical* record is retried until a clean copy lands (the
        fault plan redraws per attempt); a lossy record gets exactly
        one attempt.  Torn attempts are closed with a bare newline so
        one damaged record can never mis-frame its successors — replay
        skips the garbage line and stays aligned.
        """
        data = self._encode(record)
        plan = self.faults
        for _attempt in range(self.write_retries):
            mode = (plan.disk_write()
                    if plan is not None and plan.active else None)
            if mode == "enospc":
                self.write_errors += 1
                if critical:
                    continue
                return False
            blob = corrupt_for_fault(data, mode)
            fh = self._handle()
            try:
                fh.write(blob)
                if mode == "torn":  # keep the line framing aligned
                    fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())
            except OSError:
                self.write_errors += 1
                if critical:
                    continue
                return False
            if mode is None:
                self.records_written += 1
                return True
            self.corrupt_writes += 1
            if not critical:
                return False
        raise JournalError(
            f"journal record {record.get('t')!r} for "
            f"{record.get('name')!r} could not be made durable after "
            f"{self.write_retries} attempts")

    # -- lifecycle records -------------------------------------------------

    def job(self, name: str, *, digest: str, source: str, priority: str,
            principal: str, target: Optional[int], clock: str,
            seq: int) -> bool:
        """The serve frontend accepted a submission (pre-placement)."""
        return self._append({"t": "job", "name": name, "digest": digest,
                             "source": source, "priority": priority,
                             "principal": principal, "target": target,
                             "clock": clock, "seq": seq}, critical=True)

    def admit(self, name: str, *, digest: str, source: str,
              clock: str) -> bool:
        """The supervisor placed a tenant (write-ahead of execution)."""
        return self._append({"t": "admit", "name": name, "digest": digest,
                             "source": source, "clock": clock},
                            critical=True)

    def terminal(self, name: str, status: str) -> bool:
        """A tenant retired (released/finished/failed/cancelled)."""
        return self._append({"t": "done", "name": name, "status": status},
                            critical=True)

    # -- checkpoints -------------------------------------------------------

    def _snapshot_name(self, name: str, ticks: int) -> str:
        prefix = hashlib.sha256(name.encode()).hexdigest()[:12]
        self._snap_seq += 1
        return f"{prefix}-{ticks:08d}-{self._snap_seq:06d}.ckpt"

    def checkpoint(self, name: str, checkpoint: Checkpoint) -> bool:
        """Persist one quiescence checkpoint; records it on success.

        The snapshot file is written atomically, read back, and
        verified before the journal points at it — so every recorded
        snapshot was durable at record time.  Failure is lossy-OK:
        recovery falls back to the previous recorded snapshot.
        """
        payload = frame_payload(dumps_artifact({
            "context": checkpoint.context,
            "digest": checkpoint.digest,
            "ticks": checkpoint.ticks,
            "sim_time": checkpoint.sim_time,
        }))
        fname = self._snapshot_name(name, checkpoint.ticks)
        path = os.path.join(self.snapshot_dir, fname)
        landed = False
        for attempt in range(self.write_retries):
            try:
                durable_write(path, payload, self.faults)
            except OSError:
                self.write_errors += 1
                continue
            if self._read_snapshot(path) is not None:
                landed = True
                if attempt:
                    self.snapshot_retries += attempt
                break
            self.corrupt_writes += 1
        if not landed:
            try:
                os.unlink(path)
            except OSError:
                pass
            return False
        self.snapshots_written += 1
        recorded = self._append({"t": "ckpt", "name": name, "snap": fname,
                                 "ticks": checkpoint.ticks}, critical=False)
        self._prune_snapshots(name)
        return recorded

    def _read_snapshot(self, path: str) -> Optional[Dict[str, object]]:
        try:
            with open(path, "rb") as fh:
                payload = unframe_payload(fh.read())
            if payload is None:
                return None
            return loads_artifact(payload)
        except Exception:
            return None

    def load_snapshot(self, fname: str) -> Optional[Dict[str, object]]:
        """A recorded snapshot, verified; ``None`` if it did not survive."""
        return self._read_snapshot(
            os.path.join(self.snapshot_dir, os.path.basename(fname)))

    def _prune_snapshots(self, name: str) -> None:
        prefix = hashlib.sha256(name.encode()).hexdigest()[:12]
        mine = sorted(f.name for f in os.scandir(self.snapshot_dir)
                      if f.name.startswith(prefix))
        for stale in mine[:-self.keep_snapshots or None]:
            try:
                os.unlink(os.path.join(self.snapshot_dir, stale))
            except OSError:
                pass

    def drop_snapshots(self, name: str) -> None:
        """Release a retired tenant's snapshot files."""
        prefix = hashlib.sha256(name.encode()).hexdigest()[:12]
        for entry in os.scandir(self.snapshot_dir):
            if entry.name.startswith(prefix):
                try:
                    os.unlink(entry.path)
                except OSError:
                    pass

    # -- replay ------------------------------------------------------------

    def replay(self) -> JournalImage:
        """Fold the journal into per-tenant images, repairing as it goes.

        The torn tail (no trailing newline — the crash interrupted the
        final append) is physically truncated so later appends start on
        a clean line; complete lines that fail the magic/CRC check are
        skipped and counted, never fatal.
        """
        image = JournalImage()
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except OSError:
            return image
        if data and not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            image.truncated_bytes = len(data) - cut
            data = data[:cut]
            try:
                with open(self.path, "r+b") as fh:
                    fh.truncate(len(data))
            except OSError:
                pass
        for line in data.split(b"\n"):
            if not line:
                continue
            record = self._parse_line(line)
            if record is None:
                image.skipped += 1
                continue
            image.records += 1
            self._fold(image, record)
        return image

    @staticmethod
    def _parse_line(line: bytes) -> Optional[Dict[str, object]]:
        parts = line.split(b" ", 2)
        if len(parts) != 3 or parts[0] != JOURNAL_MAGIC:
            return None
        magic_crc, body = parts[1], parts[2]
        try:
            if int(magic_crc, 16) != zlib.crc32(body):
                return None
            record = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    @staticmethod
    def _fold(image: JournalImage, record: Dict[str, object]) -> None:
        kind = record.get("t")
        name = record.get("name")
        if not isinstance(name, str):
            return
        entry = image.tenants.get(name)
        if kind == "job":
            # A fresh submission supersedes any retired lifecycle that
            # used the same name.
            entry = RecoveredTenant(
                name=name,
                digest=str(record.get("digest", "")),
                source=str(record.get("source", "")),
                clock=str(record.get("clock", "clock")),
                priority=str(record.get("priority", "normal")),
                principal=str(record.get("principal", "default")),
                target=record.get("target"),
                seq=int(record.get("seq", 0) or 0),
            )
            image.tenants[name] = entry
        elif kind == "admit":
            if entry is None or entry.terminal is not None:
                entry = RecoveredTenant(name=name)
                image.tenants[name] = entry
            entry.admitted = True
            entry.terminal = None
            if record.get("digest"):
                entry.digest = str(record["digest"])
            if record.get("source"):
                entry.source = str(record["source"])
            if record.get("clock"):
                entry.clock = str(record["clock"])
        elif kind == "ckpt":
            if entry is not None and isinstance(record.get("snap"), str):
                entry.snapshots.append(record["snap"])
        elif kind == "done":
            if entry is not None:
                entry.terminal = str(record.get("status", "released"))

    # -- housekeeping ------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def stats(self) -> Dict[str, int]:
        return {
            "records_written": self.records_written,
            "snapshots_written": self.snapshots_written,
            "snapshot_retries": self.snapshot_retries,
            "corrupt_writes": self.corrupt_writes,
            "write_errors": self.write_errors,
        }
