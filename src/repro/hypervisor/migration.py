"""Workload-migration orchestration (paper §3.5, §6.1).

With ``$save``/``$restart`` materialized as runtime traps, migration is
mechanical: read a program's state out through ``get`` requests, move
the resulting context (state + file cursors + logical time) to another
machine, and replay it through ``set`` requests.  These helpers wrap
that flow with the latency accounting the Figure 9/10 time-series need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime.runtime import Context, Runtime


@dataclass
class MigrationReport:
    """What one suspend→transfer→resume cycle cost."""

    source: str
    destination: str
    state_bits: int
    suspend_seconds: float
    resume_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.suspend_seconds + self.resume_seconds


def suspend(runtime: Runtime) -> Context:
    """Suspend between logical ticks; charges the §6.1 save latency."""
    context = runtime.save_context()
    cost = runtime.costs.save_seconds(runtime.program.state.total_bits)
    runtime.sim_time += cost
    runtime.log("suspend", runtime.program.state.total_bits)
    return context


def resume(runtime: Runtime, context: Context) -> float:
    """Resume a context on *runtime*; returns the modeled latency.

    A destination built for this purpose should be constructed with
    ``Runtime(..., quiet_boot=True)`` so its initial-block side effects
    (boot ``$display`` output, file IO) are not replayed before the
    context overwrites its state — the suspended program already
    emitted them on the instance it is migrating from.
    """
    reconfig = (
        runtime.backend.device.reconfig_seconds
        if runtime.backend is not None else 0.0
    )
    runtime.restore_context(context)
    cost = runtime.costs.restore_seconds(
        runtime.program.state.total_bits, reconfig
    )
    runtime.sim_time += cost
    return cost


def rehydrate(context: Context, name: str, clock: str = "clock",
              compiler=None, sim_backend: Optional[str] = None,
              start_time: float = 0.0) -> Runtime:
    """Build a fresh runtime hosting *context*, with exactly-once IO.

    This is the disaster-recovery half of migration: the source runtime
    is gone (its board died), so the destination is reconstructed from
    the checkpoint alone — ``quiet_boot`` suppresses initial-block side
    effects, and the host's display log is seeded from the checkpoint so
    output emitted before the crash is neither lost nor re-emitted when
    the supervisor replays the ticks since.
    """
    runtime = Runtime(context.program_source, name=name, clock=clock,
                      compiler=compiler, sim_backend=sim_backend,
                      quiet_boot=True)
    runtime.sim_time = start_time
    runtime.restore_context(context)
    runtime.host.display_log[:] = list(context.display_log)
    return runtime


def migrate(source: Runtime, destination: Runtime) -> MigrationReport:
    """Move a running program between runtimes (and hence devices)."""
    bits = source.program.state.total_bits
    t0 = source.sim_time
    context = suspend(source)
    suspend_cost = source.sim_time - t0
    resume_cost = resume(destination, context)
    return MigrationReport(
        source=source.name,
        destination=destination.name,
        state_bits=bits,
        suspend_seconds=suspend_cost,
        resume_seconds=resume_cost,
    )
