"""The Synergy hypervisor (paper §4, Figure 6).

An indirection layer that lets multiple runtime instances share one
compiler and one device.  A runtime's compiler connects, sends the
source of a sub-program, and receives a unique engine identifier; the
instance-side engine simply forwards ABI requests over the connection.
The hypervisor's compiler coalesces every connected sub-program into a
single monolithic design, recompiles on membership changes behind the
Figure 7 state-safe handshake, serializes ABI requests, and — when its
device is full — can delegate sub-programs to a *second* hypervisor
(the virtualization layer nests, §4.1 step 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..amorphos.hull import Hull, ProtectionError
from ..amorphos.morphlet import ProtectionDomain
from ..compiler.artifacts import ArtifactStore
from ..compiler.service import CompilerService, KIND_BATCH
from ..core.pipeline import CompiledProgram
from ..fabric.bitstream import Bitstream, BitstreamCompiler
from ..fabric.board import SimulatedBoard
from ..fabric.cache import CompilationCache
from ..fabric.device import Device
from ..fabric.errors import BoardDeadError, FabricError
from ..fabric.retry import RetryPolicy
from ..fabric.synth import SynthOptions
from ..runtime.abi import (
    AbiChannel, BatchReply, Cont, Evaluate, Get, Message, ReadExpr,
    Restore, RunTicks, Set, Snapshot, TrapReply, Update, WriteLval,
)
from ..runtime.backends import Placement, synth_options_for
from .coalesce import CoalescedDesign, coalesce
from .engine_table import EngineRecord, EngineTable
from .handshake import HandshakeReport, state_safe_reprogram
from .scheduler import AbiSerializer, RoundRobinIoScheduler


class CapacityError(FabricError):
    """The device cannot host the combined design and no parent exists.

    Part of the typed fabric hierarchy, but deliberately neither
    transient nor persistent: placement rejection is an admission
    decision, not a fault — retrying without shrinking the design is
    pointless, and nothing needs quarantining.
    """


class Hypervisor:
    """Multi-tenant virtualization layer over one simulated device."""

    def __init__(self, device: Device, cache: Optional[CompilationCache] = None,
                 use_hull: bool = True, parent: Optional["Hypervisor"] = None,
                 network_latency_s: float = 5e-5,
                 anti_congestion: bool = False,
                 clock_domains: bool = False,
                 sim_backend: Optional[str] = None,
                 compiler: Optional[CompilerService] = None,
                 artifacts: Optional[ArtifactStore] = None,
                 opt_level: Optional[int] = None):
        self.device = device
        if sim_backend == "batched":
            from ..interp.compile.batch import HAVE_NUMPY
            if not HAVE_NUMPY:
                # Graceful degradation: without NumPy the batched
                # backend cannot exist, so every tenant this hypervisor
                # boots falls back to the scalar compiled engine (the
                # two run bit-identically; only the dispatch amortization
                # is lost).  Direct Simulator(backend="batched") calls
                # still raise UnsupportedBackend — the hypervisor is the
                # policy layer, so the fallback lives here.
                sim_backend = "compiled"
        self.sim_backend = sim_backend
        #: mid-end optimization level for every tenant slot this
        #: hypervisor programs (None = ambient REPRO_OPT_LEVEL)
        self.opt_level = opt_level
        # One compiler, many instances (§4): the bitstream cache, the
        # board's slot codegen, the coalescer's synthesis estimates and
        # the hull's load estimates all address one artifact store.  An
        # explicit *compiler* or *artifacts* joins a wider store (e.g.
        # shared across a fleet of hypervisors); a passed *cache*
        # contributes its store; otherwise the store is private (or
        # process-wide under REPRO_COMPILER_CACHE=1).
        if compiler is None:
            store = artifacts
            if store is None and cache is not None:
                store = cache.store
            compiler = CompilerService(store)
        self.compiler = compiler
        self.artifacts = compiler.store
        self.board = SimulatedBoard(device, sim_backend=sim_backend,
                                    compiler=compiler, opt_level=opt_level)
        self.cache = (cache if cache is not None
                      else CompilationCache(store=self.artifacts))
        self.hull = Hull(device) if use_hull else None
        self.parent = parent
        self.network_latency_s = network_latency_s
        self.anti_congestion = anti_congestion
        #: Run each application in its own clock domain (Figure 12's
        #: future-work fix): arrivals no longer slow co-residents down,
        #: at the cost of clock-crossing logic.
        self.clock_domains = clock_domains
        #: Optional background compilation of likely-next designs (§7's
        #: speculative compilation); armed via enable_speculation().
        self.speculator = None

        self.table = EngineTable()
        self.io_scheduler = RoundRobinIoScheduler()
        self.serializer = AbiSerializer()
        self.design: Optional[CoalescedDesign] = None
        self.handshakes: List[HandshakeReport] = []
        #: Engines delegated to the parent hypervisor: local id → remote id.
        self._remote: Dict[int, Tuple["Hypervisor", int]] = {}
        #: shared retry budget for supervised channels, handshake
        #: reprogram retries, and the supervisor's health reporting.
        #: Under an active fault plan, backoff carries ±25% jitter so
        #: co-failing channels desynchronize — seeded from the plan, so
        #: a replayed fault schedule reproduces the same backoffs.
        faults = self.board.faults
        if faults is not None and faults.active:
            self.retry = RetryPolicy(jitter=0.25,
                                     rng=faults.rng_for("retry"))
        else:
            self.retry = RetryPolicy()
        #: set by :meth:`quarantine`; a quarantined hypervisor admits
        #: nothing and services nothing — its tenants have been (or are
        #: being) restored elsewhere from checkpoints
        self.quarantined = False

    # -- health -----------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return not self.quarantined and not self.board.dead

    def quarantine(self) -> None:
        """Take this hypervisor out of service after a persistent fault.

        Kills the board (all slot state is already lost or untrusted),
        drops every IO stream, and flags every engine record retired so
        a later sweep finds nothing live.  Recovery of the tenants is
        the supervisor's job — it restores their last checkpoints onto
        healthy fabric.
        """
        self.quarantined = True
        self.board.kill()
        self.io_scheduler.clear()
        for rec in list(self.table.active):
            self.table.retire(rec.engine_id)
        self.table.sweep()
        self.design = None
        self._remote.clear()

    def stats(self) -> Dict[str, object]:
        """Health and traffic counters for this hypervisor."""
        from .telemetry import artifact_snapshot

        out: Dict[str, object] = {
            "healthy": self.healthy,
            "quarantined": self.quarantined,
            "board_dead": self.board.dead,
            "engines": len(self.table),
            "reconfigurations": self.board.reconfigurations,
            "abi_requests": self.serializer.requests,
            "retry": self.retry.stats(),
            "batch_artifacts": artifact_snapshot(
                self.artifacts, kinds=(KIND_BATCH,))[KIND_BATCH],
        }
        if self.board.faults is not None:
            out["faults"] = self.board.faults.stats()
        return out

    # -- connections -----------------------------------------------------------

    def connect(self, instance: str,
                domain: Optional[ProtectionDomain] = None) -> "HypervisorClient":
        """Accept a runtime instance; returns its private client backend."""
        return HypervisorClient(self, instance,
                                domain or ProtectionDomain(instance))

    @property
    def clock_hz(self) -> float:
        """The current global clock of the combined design (Figure 12)."""
        if self.design is None:
            return self.device.max_clock_hz
        return self.design.clock_hz

    # -- placement --------------------------------------------------------------

    def place_subprogram(self, instance: str, domain: ProtectionDomain,
                         program: CompiledProgram) -> Placement:
        """Admit a sub-program: coalesce, compile, state-safe reprogram."""
        if not self.healthy:
            raise BoardDeadError(
                f"hypervisor on {self.device.name} is quarantined"
            )
        record = self.table.register(instance, domain, program)
        programs = {rec.engine_id: rec.program for rec in self.table.active
                    if rec.engine_id not in self._remote}
        design = coalesce(programs, self.device, self.anti_congestion,
                          self.clock_domains, compiler=self.compiler)

        if not self.device.fits(design.resources.luts, design.resources.ffs):
            # The device is full: delegate this sub-program to the
            # parent hypervisor (nesting) rather than reject it.
            if self.parent is None:
                self.table.retire(record.engine_id)
                self.table.sweep()
                raise CapacityError(
                    f"design needs {design.resources.luts} LUTs; device "
                    f"{self.device.name} has {self.device.luts} and no parent"
                )
            remote = self.parent.place_subprogram(instance, domain, program)
            self._remote[record.engine_id] = (self.parent, remote.engine_id)
            return Placement(
                engine_id=record.engine_id,
                clock_hz=remote.clock_hz,
                compile_seconds=remote.compile_seconds,
                reconfig_seconds=remote.reconfig_seconds,
                cache_hit=remote.cache_hit,
                bitstream=remote.bitstream,
            )

        if self.hull is not None:
            options = synth_options_for(program, self.anti_congestion)
            est = self.compiler.estimate(
                program.transform.module, program.hardware_env, options,
                digest=program.hardware_digest, env_tag="hw",
            )
            record.morphlet = self.hull.load(domain, program, est)

        bitstream, compile_seconds, cache_hit = self._compile(design)
        report = self._reprogram(bitstream, design)
        return Placement(
            engine_id=record.engine_id,
            clock_hz=design.clock_for(record.engine_id),
            compile_seconds=compile_seconds + report.transfer_seconds,
            reconfig_seconds=report.reconfig_seconds,
            cache_hit=cache_hit,
            bitstream=bitstream,
        )

    def _make_bitstream(self, design: CoalescedDesign) -> Bitstream:
        compiler = BitstreamCompiler(self.device, SynthOptions())
        return Bitstream(
            digest=design.digest,
            device_name=self.device.name,
            resources=design.resources,
            clock_hz=design.clock_hz,
            compile_seconds=compiler.compile_latency(design.resources),
        )

    @property
    def _bitstream_options_key(self) -> str:
        """Options discriminator for coalesced-design bitstreams.

        ``design.digest`` covers the member text, device and clock-domain
        mode but not the P&R strategy, while the cached bitstream's
        clock/resources depend on it — so ``anti_congestion`` must be in
        the key or two hypervisors sharing one store would alias designs
        compiled under different strategies.
        """
        return f"hypervisor;ac={int(self.anti_congestion)}"

    def _compile(self, design: CoalescedDesign) -> Tuple[Bitstream, float, bool]:
        options_key = self._bitstream_options_key
        cached = self.cache.lookup(self.device.name, options_key, design.digest)
        if cached is not None:
            return cached, 0.0, True
        bitstream = self._make_bitstream(design)
        self.cache.insert(self.device.name, options_key, bitstream)
        return bitstream, bitstream.compile_seconds, False

    # -- speculative compilation (§7 future work) -----------------------------

    def enable_speculation(self, parallelism: int = 2) -> None:
        from ..fabric.speculative import SpeculativeCompiler

        self.speculator = SpeculativeCompiler(
            self.cache, self.device.name, self._bitstream_options_key,
            parallelism
        )

    def speculate_departures(self, now: float) -> int:
        """Queue background builds for every single-tenant departure.

        Called by the deployment layer with its wall clock after each
        epoch; finished builds land in the compilation cache via
        ``self.speculator.settle(now)``.
        """
        if self.design is None or self.speculator is None:
            return 0
        queued = 0
        for engine_id in self.design.engine_ids:
            programs = {
                eid: prog
                for eid, prog in self.design.engine_programs.items()
                if eid != engine_id
            }
            if not programs:
                continue
            candidate = coalesce(programs, self.device, self.anti_congestion,
                                 self.clock_domains, compiler=self.compiler)
            self.speculator.enqueue(
                self._make_bitstream(candidate), now,
                reason=f"departure of engine {engine_id}",
            )
            queued += 1
        return queued

    def _reprogram(self, bitstream: Bitstream, design: CoalescedDesign) -> HandshakeReport:
        capture_sets: Dict[int, List[str]] = {}
        for rec in self.table.active:
            if rec.program.state.uses_yield:
                capture_sets[rec.engine_id] = rec.program.state.captured_names()
        report = state_safe_reprogram(
            self.board, bitstream, design.engine_programs, capture_sets,
            retry=self.retry,
        )
        self.design = design
        self.handshakes.append(report)
        return report

    def finish_instance(self, engine_id: int) -> None:
        """Flag an engine for removal; it disappears at the next epoch."""
        remote = self._remote.pop(engine_id, None)
        if remote is not None:
            parent, remote_id = remote
            parent.finish_instance(remote_id)
        if engine_id in self.table:
            record = self.table.lookup(engine_id)
            if self.hull is not None and record.morphlet is not None:
                self.hull.unload(record.domain, record.morphlet.morphlet_id)
            self.table.retire(engine_id)
        self.io_scheduler.unregister(engine_id)
        # Recompile without the retired sub-program (flag-and-sweep, §4.1).
        survivors = self.table.sweep()
        programs = {rec.engine_id: rec.program for rec in survivors
                    if rec.engine_id not in self._remote}
        if programs:
            design = coalesce(programs, self.device, self.anti_congestion,
                              self.clock_domains, compiler=self.compiler)
            bitstream, _, _ = self._compile(design)
            self._reprogram(bitstream, design)
        else:
            self.design = None
            self.board.slots.clear()

    # -- the ABI surface (AbiTarget) ------------------------------------------------

    def channel(self, engine_id: int) -> AbiChannel:
        latency = self.device.abi_latency_s + self.network_latency_s

        def current() -> float:
            # Contention on the shared IO path stretches every message
            # this engine exchanges with the hypervisor (§4.3).
            extra = 0.0
            if engine_id in self.io_scheduler._streams:
                extra = self.io_scheduler.extra_wait(engine_id)
            return latency + extra

        return AbiChannel(self, engine_id, current,
                          faults=self.board.faults, retry=self.retry,
                          deadline_s=self.device.op_deadline_s)

    def handle(self, engine_id: int, message: Message):
        if self.quarantined:
            raise BoardDeadError(
                f"hypervisor on {self.device.name} is quarantined"
            )
        self.serializer.admit()
        remote = self._remote.get(engine_id)
        if remote is not None:
            parent, remote_id = remote
            return parent.handle(remote_id, message)
        if engine_id not in self.table:
            raise KeyError(f"unknown engine {engine_id}")
        board = self.board
        if isinstance(message, Get):
            return board.get_var(engine_id, message.name)
        if isinstance(message, Set):
            return board.set_var(engine_id, message.name, message.value)
        if isinstance(message, Evaluate):
            outcome = board.evaluate(engine_id)
            return TrapReply(outcome.status, outcome.task_id, outcome.native_cycles)
        if isinstance(message, Cont):
            outcome = board.cont(engine_id)
            return TrapReply(outcome.status, outcome.task_id, outcome.native_cycles)
        if isinstance(message, RunTicks):
            outcome = board.run_ticks(engine_id, message.clock, message.ticks)
            return BatchReply(outcome.status, outcome.ticks_done,
                              outcome.task_id, outcome.native_cycles_total)
        if isinstance(message, Update):
            return None
        if isinstance(message, Snapshot):
            return board.snapshot(engine_id, message.names)
        if isinstance(message, Restore):
            return board.restore(engine_id, message.state)
        if isinstance(message, ReadExpr):
            return board.read_expr(engine_id, message.expr)
        if isinstance(message, WriteLval):
            return board.write_lvalue(engine_id, message.lhs, message.value)
        raise TypeError(f"unhandled ABI message {type(message).__name__}")


class HypervisorClient:
    """One instance's private connection — the isolation boundary.

    Presents the same backend interface as
    :class:`~repro.runtime.backends.DirectBoardBackend`, so a
    :class:`~repro.runtime.runtime.Runtime` cannot tell whether it owns
    a device or shares one.  Channels are only issued for engines this
    client placed; anything else raises :class:`ProtectionError`.
    """

    def __init__(self, hypervisor: Hypervisor, instance: str,
                 domain: ProtectionDomain):
        self.hypervisor = hypervisor
        self.instance = instance
        self.domain = domain
        self._owned: List[int] = []

    @property
    def device(self) -> Device:
        return self.hypervisor.device

    @property
    def board(self) -> SimulatedBoard:
        return self.hypervisor.board

    @property
    def cache(self) -> CompilationCache:
        return self.hypervisor.cache

    def place(self, program: CompiledProgram) -> Placement:
        placement = self.hypervisor.place_subprogram(
            self.instance, self.domain, program
        )
        self._owned.append(placement.engine_id)
        return placement

    def channel(self, engine_id: int) -> AbiChannel:
        if engine_id not in self._owned:
            raise ProtectionError(
                f"instance {self.instance!r} does not own engine {engine_id}"
            )
        return self.hypervisor.channel(engine_id)

    def release(self, engine_id: int) -> None:
        if engine_id in self._owned:
            self._owned.remove(engine_id)
            self.hypervisor.finish_instance(engine_id)
