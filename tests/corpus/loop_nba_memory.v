// differential-fuzz repro (distilled from seed 24)
// fuzz-ticks: 4
// REGRESSION — board path. A loop body executing one memory-NBA site
// several times per tick with different addresses used to overwrite
// the site's single __wa shadow address, latching only the last write.
// The §3.4 transform now gives looped indexed sites a pending-update
// queue of (index, value) pairs (__wqa/__wqd/__wn) drained by the
// update state in execution order, so every iteration latches — the
// same behaviour the software engines' NBA queues implement.
module loop_nba_memory(clock);
  input wire clock;
  reg [7:0] cyc = 0;
  reg [7:0] mem [0:3];
  integer i;
  always @(posedge clock) begin
    cyc <= cyc + 1;
    for (i = 0; i < 3; i = i + 1)
      mem[i] <= cyc + i;
  end
endmodule
