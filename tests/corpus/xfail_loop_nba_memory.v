// differential-fuzz repro (distilled from seed 24)
// fuzz-ticks: 4
// KNOWN DIVERGENCE — board path only.
// The §3.4 transform materializes each non-blocking assignment site as
// one __wa/__wd/__we shadow-register triple.  A loop body that executes
// the same memory-NBA site several times per tick with different
// addresses overwrites the shadow address, so the update state latches
// only the last write — the software engines queue and apply all of
// them.  Fixing this needs per-iteration site expansion (loop
// unrolling) in machinify; until then the generator does not emit
// memory NBAs inside loops, and this repro documents the gap.
module loop_nba_memory(clock);
  input wire clock;
  reg [7:0] cyc = 0;
  reg [7:0] mem [0:3];
  integer i;
  always @(posedge clock) begin
    cyc <= cyc + 1;
    for (i = 0; i < 3; i = i + 1)
      mem[i] <= cyc + i;
  end
endmodule
