// hand-distilled conformance case
// fuzz-ticks: 6
// $display interleaving across blocks and control structures: output
// order must follow declaration order of the triggering blocks and
// program order within a block, on every path — including when a
// case arm and a nested if both print in the same tick.
module display_ordering(clock);
  input wire clock;
  reg [3:0] cyc = 0;
  reg [7:0] acc = 1;
  always @(posedge clock) begin
    cyc <= cyc + 1;
    $display("A %0d", cyc);
    case (cyc[1:0])
      2'd0: $display("A.case0 acc=%h", acc);
      2'd1: begin
        acc <= acc + 8'd3;
        $display("A.case1");
      end
      default: if (acc[0]) $display("A.odd %b", acc);
    endcase
  end
  always @(posedge clock) begin
    if (cyc != 0) $display("B %0d", cyc);
    acc <= acc ^ {cyc, 4'd5};
  end
endmodule
