// hand-distilled conformance case
// fuzz-ticks: 8
// $finish mid-evaluation: statements after the $finish in the same
// block, sibling blocks later in declaration order, and pending
// non-blocking assignments must all be abandoned identically on every
// path (the interpreter aborts the tick, the hardware engine stops
// granting __cont).
module finish_mid_eval(clock);
  input wire clock;
  reg [7:0] cyc = 0;
  reg [7:0] before_f = 0;
  reg [7:0] after_f = 0;
  reg [7:0] sibling = 0;
  always @(posedge clock) begin
    cyc <= cyc + 1;
    before_f <= before_f + 1;
    if (cyc == 3) begin
      $display("finishing at %0d", cyc);
      $finish;
      $display("never printed");
    end
    after_f <= after_f + 1;
  end
  always @(posedge clock) begin
    sibling <= sibling + 1;
    $display("tick %0d sibling %0d", cyc, sibling);
  end
endmodule
