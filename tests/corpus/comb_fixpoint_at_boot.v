// differential-fuzz regression (shrunk from seed 359, then fixed)
// fuzz-ticks: 6
// An @* block whose dependencies never change from their boot values
// (r2 stays 0, so c = x % 0 = all-ones).  Combinational state must
// start at its settled fixpoint on every backend: the hardware slot
// recomputes @* blocks when a bulk restore notifies its store, so a
// software engine that never primed the block would hand over (or
// compare) stale c = 0.
module comb_fixpoint_at_boot(clock);
  input wire clock;
  reg [15:0] r1 = 3;
  reg [15:0] r2 = 0;
  reg [11:0] c;
  reg [11:0] seen = 0;
  always @(*)
    c = r1 % r2;
  always @(posedge clock)
    if (c != 0)
      seen <= seen + c;
endmodule
