// differential-fuzz regression (shrunk from seed 82, then fixed)
// fuzz-ticks: 8
// A memory NBA whose address reads a register that is itself NBA'd in
// the same tick.  LRM §9.2.2: the lvalue index is evaluated when the
// statement executes, not in the update region — the software
// simulators used to defer it and latch through the *post-update*
// address, diverging from the transform's __wa capture.
module nba_index_capture(clock);
  input wire clock;
  reg [1:0] ptr = 0;
  reg [15:0] val = 16'h1111;
  reg [15:0] mem [0:3];
  always @(posedge clock) begin
    ptr <= ptr + 1;
    val <= val + 16'h1111;
    mem[ptr] <= val;
  end
endmodule
