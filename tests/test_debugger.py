"""Step-through debugger tests (the §3 future-work application)."""

import struct

import pytest

from repro.debug import Debugger
from repro.interp import VirtualFS

COUNTER = """
module counter(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""

READER = """
module reader(input wire clock);
  integer fd = $fopen("d.bin");
  reg [31:0] v = 0;
  reg [63:0] total = 0;
  always @(posedge clock) begin
    $fread(fd, v);
    if ($feof(fd)) $finish(0);
    else total <= total + v;
  end
endmodule
"""


def reader_vfs(values):
    vfs = VirtualFS()
    vfs.add_file("d.bin", b"".join(struct.pack(">I", v) for v in values))
    return vfs


class TestStepping:
    def test_step_tick_advances_program(self):
        dbg = Debugger(COUNTER)
        for _ in range(3):
            dbg.step_tick()
        assert dbg.read("n") == 3
        assert dbg.ticks == 3

    def test_step_cycle_is_finer_than_tick(self):
        dbg = Debugger(COUNTER)
        dbg.step_cycle()
        # Mid-tick: the NBA shadow holds the new value, n is unchanged.
        assert dbg.read("n") == 0
        dbg.step_tick()
        assert dbg.read("n") == 1

    def test_locals_hide_internals(self):
        dbg = Debugger(COUNTER)
        names = dbg.locals()
        assert "n" in names
        assert not any(name.startswith("__") for name in names)

    def test_write_patches_state(self):
        dbg = Debugger(COUNTER)
        dbg.step_tick()
        dbg.write("n", 100)
        dbg.step_tick()
        assert dbg.read("n") == 101


class TestBreakpoints:
    def test_break_at_task(self):
        dbg = Debugger(READER, vfs=reader_vfs([7, 8, 9]))
        dbg.break_at_task("$fread")
        event = dbg.continue_()
        assert event.reason == "breakpoint"
        assert event.trap is not None and event.trap.name == "$fread"
        # Mid-tick inspection at the trap: total still holds old value.
        assert dbg.read("total") == 0

    def test_trap_serviced_manually_then_resumes(self):
        dbg = Debugger(READER, vfs=reader_vfs([5, 6]))
        dbg.break_at_task("$fread")
        dbg.continue_()
        dbg.service_trap()          # perform the read
        assert dbg.read("v") == 5   # result landed mid-tick
        dbg.clear_breakpoints()
        dbg.step_tick()
        assert dbg.read("total") == 5

    def test_watchpoint(self):
        dbg = Debugger(COUNTER)
        dbg.watch(lambda d: d.read("n") >= 4)
        event = dbg.continue_()
        assert event.reason == "breakpoint"
        assert dbg.read("n") == 4

    def test_break_at_state(self):
        dbg = Debugger(READER, vfs=reader_vfs([1, 2, 3]))
        update_state = dbg.program.transform.update_state
        dbg.break_at_state(update_state)
        event = dbg.continue_()
        assert event.reason == "breakpoint"
        assert dbg.current_state == update_state

    def test_breakpoint_hit_count(self):
        dbg = Debugger(READER, vfs=reader_vfs([1, 2, 3]))
        bp = dbg.break_at_task("$fread")
        dbg.continue_()
        dbg.continue_()
        assert bp.hits == 2


class TestProgramOutcome:
    def test_debugged_run_matches_free_run(self):
        values = [3, 1, 4, 1, 5]
        dbg = Debugger(READER, vfs=reader_vfs(values))
        for _ in range(len(values) + 2):
            if dbg.host.finished:
                break
            dbg.step_tick()
        assert dbg.read("total") == sum(values)
