"""Tests for the regex -> DFA -> Verilog compiler (appendix A.7)."""

import pytest

from repro.bench import datagen
from repro.bench.regexc import Dfa, RegexError, compile_dfa, reference_count, source
from repro.interp import Simulator, TaskHost, VirtualFS
from repro.verilog import flatten, parse


def run_matcher(pattern, text, cycles=None):
    vfs = VirtualFS()
    vfs.add_file("regex_input.txt", text.encode())
    host = TaskHost(vfs=vfs)
    sim = Simulator(flatten(parse(source(pattern)), "regexc"), host)
    sim.run(max_cycles=cycles or (len(text) + 5))
    return sim, host


class TestParser:
    def test_unbalanced_paren(self):
        with pytest.raises(RegexError):
            compile_dfa("(ab")

    def test_trailing_operator(self):
        with pytest.raises(RegexError):
            compile_dfa("*a")

    def test_empty_branch(self):
        with pytest.raises(RegexError):
            compile_dfa("a|")

    def test_bad_range(self):
        with pytest.raises(RegexError):
            compile_dfa("[z-a]")

    def test_escapes(self):
        dfa = compile_dfa(r"\*\[")
        assert reference_count(r"\*\[", "*[ x *[") == 2


class TestDfa:
    def test_literal_chain_state_count(self):
        dfa = compile_dfa("ACGT")
        assert dfa.n_states == 5  # start + one per consumed char

    def test_minimization_collapses_equivalent_branches(self):
        # a(b|b)c has redundant alternatives: same DFA as abc.
        assert compile_dfa("a(b|b)c").n_states == compile_dfa("abc").n_states

    def test_star_loops(self):
        dfa = compile_dfa("ab*c")
        # start, after-a (loops on b), accept.
        assert dfa.n_states == 3

    def test_accepting_states_exist(self):
        assert compile_dfa("x").accepting


class TestReferenceCount:
    CASES = [
        ("abc", "abcabc", 2),
        ("abc", "ab", 0),
        ("a+", "aaab", 3),          # restart-after-match splits the run
        ("ab*c", "ac abc abbbc", 3),
        ("a(b|c)d", "abd acd aed", 2),
        ("[0-9]+", "a1b22c", 3),    # 1, 2, 2 (restart after each digit)
        # Reset semantics: a char that misses an edge resets the DFA and
        # is NOT reconsidered as a potential match start.  So in
        # "xy ay by", the space before 'b' enters [^x]'s first state and
        # 'b' then resets — "by" is consumed, leaving only "ay".
        ("[^x]y", "xy ay by", 1),
        ("colou?r", "color colour", 2),
        ("(ab)+", "ababab", 3),
        # Same effect: the space after "az" absorbs the '.'; 'b' resets.
        (".z", "az bz cz", 2),
    ]

    @pytest.mark.parametrize("pattern,text,expected", CASES)
    def test_hand_cases(self, pattern, text, expected):
        assert reference_count(pattern, text) == expected


class TestGeneratedHardware:
    @pytest.mark.parametrize("pattern,text", [
        ("ACGT", "ACGTACGTAC"),
        ("AC(G|T)*T", "ACGTTACGGT"),
        ("A+C", "AAACAC"),
        ("(AG|CT)+", "AGCTAGAG"),
    ])
    def test_matches_reference(self, pattern, text):
        sim, host = run_matcher(pattern, text)
        expected = reference_count(pattern, text)
        assert f"{expected} matches" in host.display_log[-1], pattern

    def test_long_random_stream(self):
        text = datagen.regex_text(800)
        pattern = "AC(G|T)T"
        sim, host = run_matcher(pattern, text, cycles=1200)
        expected = reference_count(pattern, text)
        assert f"{expected} matches" in host.display_log[-1]

    def test_module_compiles_through_pipeline(self):
        from repro.core import compile_program

        program = compile_program(source("AB*C"))
        assert program.transform.has_traps  # fgetc/feof/display/finish

    def test_custom_module_name(self):
        text = source("AC", module_name="my_matcher")
        assert "module my_matcher(" in text

    def test_stock_benchmark_motif_agrees(self):
        """The compiled 'ACG*T' matcher counts like the hand-written
        benchmark's DFA on motif-only inputs."""
        from repro.bench import regex as stock

        text = "ACGT ACGGGT ACT AGT"
        assert (reference_count("ACG*T", text)
                == stock.reference_matches(text))
