"""regex / nw / adpcm / df benchmark correctness vs references."""

import pytest

from repro.bench import adpcm, datagen, df, nw, regex
from repro.interp import Simulator, TaskHost, VirtualFS
from repro.verilog import flatten, parse


def run_bench(source_text, top, vfs=None, cycles=2000):
    host = TaskHost(vfs=vfs or VirtualFS())
    sim = Simulator(flatten(parse(source_text), top), host)
    sim.run(max_cycles=cycles)
    return sim, host


class TestRegex:
    def make(self, text):
        vfs = VirtualFS()
        vfs.add_file(regex.INPUT_PATH, text.encode())
        return vfs

    def test_counts_match_python_re(self):
        text = datagen.regex_text(1500)
        sim, host = run_bench(regex.source(), "regex", self.make(text))
        expected = regex.reference_matches(text)
        assert f"{expected} matches" in host.display_log[-1]

    def test_simple_motifs(self):
        cases = {
            "ACT": 1,          # zero G's
            "ACGT": 1,
            "ACGGGGT": 1,
            "ACACGT": 1,       # A-C restart then match
            "AC": 0,
            "ACTACT": 2,
            "TTTT": 0,
        }
        for text, expected in cases.items():
            sim, host = run_bench(regex.source(), "regex", self.make(text))
            assert f"{expected} matches" in host.display_log[-1], text

    def test_char_count(self):
        text = "ACGTACGT"
        sim, host = run_bench(regex.source(), "regex", self.make(text))
        assert "8 chars" in host.display_log[-1]

    def test_empty_input_finishes_immediately(self):
        sim, host = run_bench(regex.source(), "regex", self.make(""))
        assert host.finished
        assert "0 matches in 0 chars" in host.display_log[-1]


class TestNw:
    def test_reference_score_identity(self):
        assert nw.reference_score(b"ACGTACGT", b"ACGTACGT") == 8 * nw.MATCH

    def test_reference_score_all_mismatch(self):
        # Aligning two totally different equal-length strings: the DP may
        # still prefer substitutions (8 * -1 = -8) over gaps.
        assert nw.reference_score(b"AAAAAAAA", b"CCCCCCCC") == 8 * nw.MISMATCH

    def test_hardware_matches_reference(self):
        data = datagen.nw_pairs(25)
        vfs = VirtualFS()
        vfs.add_file(nw.INPUT_PATH, data)
        sim, host = run_bench(nw.source(), "nw", vfs, cycles=60)
        total, tiles = nw.reference_total(data)
        assert f"{tiles} tiles" in host.display_log[-1]
        assert f"score {total & 0xFFFFFFFF}" in host.display_log[-1]

    def test_identical_sequences_score_max(self):
        seq = b"ACGTACGT"
        vfs = VirtualFS()
        vfs.add_file(nw.INPUT_PATH, seq + seq)
        sim, host = run_bench(nw.source(), "nw", vfs, cycles=10)
        assert f"score {8 * nw.MATCH}" in host.display_log[-1]


class TestAdpcm:
    def test_reference_reconstruction_reasonable(self):
        samples = datagen.adpcm_samples(200)
        decoded, errsum = adpcm.encode_decode_reference(samples)
        assert len(decoded) == 200
        # ADPCM tracks the waveform: mean error well under the step size.
        assert errsum / 200 < 2000

    def test_hardware_matches_reference(self):
        samples = datagen.adpcm_samples(150)
        vfs = VirtualFS()
        vfs.add_file(adpcm.INPUT_PATH, datagen.pack_u16(samples))
        sim, host = run_bench(adpcm.source(), "adpcm", vfs, cycles=400)
        _, errsum = adpcm.encode_decode_reference(samples)
        assert f"150 samples, errsum {errsum}" in host.display_log[-1]

    def test_progress_reports_emitted(self):
        # Reports fire on rising samples at the interval boundary, so
        # use a small interval and enough samples to see several.
        samples = datagen.adpcm_samples(600)
        vfs = VirtualFS()
        vfs.add_file(adpcm.INPUT_PATH, datagen.pack_u16(samples))
        sim, host = run_bench(adpcm.source(report_interval_log2=6),
                              "adpcm", vfs, cycles=1500)
        progress = [line for line in host.display_log if "progress" in line]
        assert len(progress) >= 1

    def test_step_table_is_standard_ima(self):
        assert adpcm.STEP_TABLE[0] == 7
        assert adpcm.STEP_TABLE[-1] == 32767
        assert len(adpcm.STEP_TABLE) == 89
        assert adpcm.STEP_TABLE == sorted(adpcm.STEP_TABLE)


class TestDf:
    def test_acc_matches_python_floats(self):
        sim, host = run_bench(df.source(iters=48), "df", cycles=60)
        got = df.bits_to_float(sim.get("acc"))
        ref = df.reference_acc(48)
        assert abs(got - ref) / abs(ref) < 1e-10

    def test_different_seeds_diverge(self):
        sim_a, _ = run_bench(df.source(iters=16, seed=1), "df", cycles=20)
        sim_b, _ = run_bench(df.source(iters=16, seed=2), "df", cycles=20)
        assert sim_a.get("acc") != sim_b.get("acc")

    def test_finishes_and_reports(self):
        sim, host = run_bench(df.source(iters=8), "df", cycles=20)
        assert host.finished
        assert "after 8 iters" in host.display_log[-1]

    def test_float_bit_helpers_roundtrip(self):
        for value in (1.0, 2.5, 1e-3, 12345.678):
            assert df.bits_to_float(df.float_to_bits(value)) == value


class TestDatagen:
    def test_regex_text_alphabet(self):
        text = datagen.regex_text(500)
        assert set(text) <= set("ACGT")
        assert len(text) == 500

    def test_regex_text_deterministic(self):
        assert datagen.regex_text(100, seed=3) == datagen.regex_text(100, seed=3)

    def test_nw_pairs_shape(self):
        data = datagen.nw_pairs(10, tile=8)
        assert len(data) == 10 * 16
        assert set(data) <= set(b"ACGT")

    def test_nw_similarity_biases_matches(self):
        similar = datagen.nw_pairs(50, similarity=95)
        dissimilar = datagen.nw_pairs(50, similarity=5)
        total_sim, _ = nw.reference_total(similar)
        total_dis, _ = nw.reference_total(dissimilar)
        assert total_sim > total_dis

    def test_adpcm_samples_in_range(self):
        samples = datagen.adpcm_samples(300)
        assert all(0 <= s <= 65535 for s in samples)

    def test_pack_helpers(self):
        assert datagen.pack_u16([1, 2]) == b"\x00\x01\x00\x02"
        assert datagen.pack_u32([1]) == b"\x00\x00\x00\x01"
