"""mips32 benchmark: assembler and CPU correctness."""

import pytest

from repro.bench import mips32
from repro.interp import Simulator, TaskHost
from repro.verilog import flatten, parse


class TestAssembler:
    def test_rtype_encoding(self):
        word = mips32.assemble(["add $3, $1, $2"])[0]
        assert word == (1 << 21) | (2 << 16) | (3 << 11) | 0x20

    def test_itype_encoding(self):
        word = mips32.assemble(["addi $5, $0, 42"])[0]
        assert word == (0x08 << 26) | (5 << 16) | 42

    def test_negative_immediate(self):
        word = mips32.assemble(["addi $1, $0, -1"])[0]
        assert word & 0xFFFF == 0xFFFF

    def test_memory_operands(self):
        word = mips32.assemble(["lw $2, 8($3)"])[0]
        assert word == (0x23 << 26) | (3 << 21) | (2 << 16) | 8

    def test_shift_encoding(self):
        word = mips32.assemble(["sll $2, $1, 4"])[0]
        assert word == (1 << 16) | (2 << 11) | (4 << 6)

    def test_branch_label_backward(self):
        words = mips32.assemble([
            "top: addi $1, $1, 1",
            "beq $0, $0, top",
        ])
        # offset = top(0) - (1+1) = -2
        assert words[1] & 0xFFFF == 0xFFFE

    def test_jump_label(self):
        words = mips32.assemble([
            "addi $1, $0, 0",
            "loop: j loop",
        ])
        assert words[1] == (0x02 << 26) | 1

    def test_comments_and_blank_lines(self):
        words = mips32.assemble(["  # just a comment", "", "addi $1, $0, 1"])
        assert len(words) == 1

    def test_unknown_mnemonic(self):
        with pytest.raises(mips32.AsmError):
            mips32.assemble(["frobnicate $1, $2"])


class TestCpu:
    def run_program(self, lines, ticks):
        """Assemble arbitrary code into the CPU's imem and run it."""
        program_words = mips32.assemble(lines)
        src = mips32.source()
        sim = Simulator(flatten(parse(src), "mips32"), TaskHost())
        # Overwrite the embedded program.
        for i in range(64):
            sim.store.mem_set("imem", i,
                              program_words[i] if i < len(program_words) else 0)
        sim.store.set("pc", 0)
        sim.tick(cycles=ticks)
        return sim

    def test_addi_add_sub(self):
        sim = self.run_program([
            "addi $1, $0, 10",
            "addi $2, $0, 3",
            "add $3, $1, $2",
            "sub $4, $1, $2",
            "loop: j loop",
        ], 8)
        assert sim.store.mem_get("regs", 3) == 13
        assert sim.store.mem_get("regs", 4) == 7

    def test_logic_ops(self):
        sim = self.run_program([
            "addi $1, $0, 0xF0",
            "addi $2, $0, 0xFF",
            "and $3, $1, $2",
            "or $4, $1, $2",
            "ori $5, $0, 0xABC",
            "loop: j loop",
        ], 8)
        assert sim.store.mem_get("regs", 3) == 0xF0
        assert sim.store.mem_get("regs", 4) == 0xFF
        assert sim.store.mem_get("regs", 5) == 0xABC

    def test_slt_and_branches(self):
        sim = self.run_program([
            "addi $1, $0, 5",
            "addi $2, $0, 9",
            "slt $3, $1, $2",     # 1
            "beq $3, $0, skip",   # not taken
            "addi $4, $0, 111",
            "skip: addi $5, $0, 7",
            "loop: j loop",
        ], 10)
        assert sim.store.mem_get("regs", 3) == 1
        assert sim.store.mem_get("regs", 4) == 111
        assert sim.store.mem_get("regs", 5) == 7

    def test_memory_roundtrip(self):
        sim = self.run_program([
            "addi $1, $0, 77",
            "sw $1, 100($0)",
            "lw $2, 100($0)",
            "loop: j loop",
        ], 8)
        assert sim.store.mem_get("regs", 2) == 77
        assert sim.store.mem_get("dmem", 25) == 77  # byte 100 / 4

    def test_reg_zero_is_hardwired(self):
        sim = self.run_program([
            "addi $0, $0, 99",
            "add $1, $0, $0",
            "loop: j loop",
        ], 6)
        assert sim.store.mem_get("regs", 1) == 0

    def test_shifts(self):
        sim = self.run_program([
            "addi $1, $0, 1",
            "sll $2, $1, 6",
            "srl $3, $2, 2",
            "loop: j loop",
        ], 8)
        assert sim.store.mem_get("regs", 2) == 64
        assert sim.store.mem_get("regs", 3) == 16

    def test_instret_counts(self):
        sim = self.run_program(["loop: j loop"], 5)
        assert sim.get("instret") == 5


class TestSortWorkload:
    def test_first_sort_matches_reference(self):
        sim = Simulator(flatten(parse(mips32.source()), "mips32"), TaskHost())
        ticks = 0
        while sim.store.mem_get("regs", 10) < 1 and ticks < 20000:
            sim.tick()
            ticks += 1
        assert sim.store.mem_get("regs", 10) == 1
        array = [sim.store.mem_get("dmem", 16 + i)
                 for i in range(mips32.ARRAY_LEN)]
        assert array == mips32.reference_sorted_array()

    def test_workload_reruns_forever(self):
        sim = Simulator(flatten(parse(mips32.source()), "mips32"), TaskHost())
        sim.tick(cycles=6000)
        assert sim.store.mem_get("regs", 10) >= 1  # keeps sorting
