"""The $yield variants of every benchmark must stay *functionally*
correct — quiescence only changes what gets captured, not what runs."""

import pytest

from repro.bench import BENCHMARKS, adpcm, datagen, df, mips32, nw, regex
from repro.core import compile_program
from repro.interp import Simulator, TaskHost, VirtualFS
from repro.verilog import flatten, parse


def run_q(source_text, top, vfs=None, cycles=300):
    host = TaskHost(vfs=vfs or VirtualFS())
    sim = Simulator(flatten(parse(source_text), top), host)
    sim.run(max_cycles=cycles)
    return sim, host


class TestQuiescentFunctionality:
    def test_regex_q(self):
        text = datagen.regex_text(400)
        vfs = VirtualFS()
        vfs.add_file(regex.INPUT_PATH, text.encode())
        sim, host = run_q(regex.source(quiescence=True), "regex", vfs, 600)
        assert f"{regex.reference_matches(text)} matches" in host.display_log[-1]
        assert host.yield_asserted or host.finished

    def test_nw_q(self):
        data = datagen.nw_pairs(12)
        vfs = VirtualFS()
        vfs.add_file(nw.INPUT_PATH, data)
        sim, host = run_q(nw.source(quiescence=True), "nw", vfs, 40)
        total, tiles = nw.reference_total(data)
        assert f"{tiles} tiles" in host.display_log[-1]
        assert f"score {total & 0xFFFFFFFF}" in host.display_log[-1]

    def test_adpcm_q(self):
        samples = datagen.adpcm_samples(80)
        vfs = VirtualFS()
        vfs.add_file(adpcm.INPUT_PATH, datagen.pack_u16(samples))
        sim, host = run_q(adpcm.source(quiescence=True), "adpcm", vfs, 200)
        _, errsum = adpcm.encode_decode_reference(samples)
        assert f"errsum {errsum}" in host.display_log[-1]

    def test_df_q(self):
        sim, host = run_q(df.source(iters=16, quiescence=True), "df", cycles=30)
        got = df.bits_to_float(sim.get("acc"))
        ref = df.reference_acc(16)
        assert abs(got - ref) / abs(ref) < 1e-10

    def test_mips32_q_yields_at_outer_loop(self):
        sim, host = run_q(mips32.source(quiescence=True), "mips32", cycles=40)
        # $yield fires when PC re-reaches the outer label; with the seed
        # program that happens within the first fill pass boundary.
        sim.tick(cycles=2500)
        assert host.yield_asserted or sim.store.mem_get("regs", 10) >= 1


class TestQuiescenceStructuralInvariants:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_q_variant_has_strictly_smaller_capture(self, name):
        plain = compile_program(BENCHMARKS[name].source(quiescence=False))
        quiescent = compile_program(BENCHMARKS[name].source(quiescence=True))
        assert quiescent.state.captured_bits < plain.state.captured_bits
        assert plain.state.captured_bits == plain.state.total_bits

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_q_variant_uses_yield(self, name):
        program = compile_program(BENCHMARKS[name].source(quiescence=True))
        assert program.state.uses_yield
