"""bitcoin benchmark: bit-exact against hashlib."""

import pytest

from repro.bench import bitcoin
from repro.core import compile_program
from repro.interp import Simulator, TaskHost
from repro.verilog import flatten, parse


def fresh_sim(target, quiescence=False):
    src = parse(bitcoin.source(target=target, quiescence=quiescence))
    return Simulator(flatten(src, "bitcoin"), TaskHost())


class TestReference:
    def test_digest_matches_hashlib(self):
        import hashlib
        import struct

        digest = bitcoin.reference_digest(bitcoin.DEFAULT_DATA, 5)
        manual = hashlib.sha256(
            hashlib.sha256(bitcoin.DEFAULT_DATA + struct.pack(">I", 5)).digest()
        ).digest()
        assert digest == manual

    def test_find_nonce_easy_target(self):
        nonce = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, 1 << 252)
        assert int.from_bytes(
            bitcoin.reference_digest(bitcoin.DEFAULT_DATA, nonce), "big"
        ) < (1 << 252)


class TestHardwareSha:
    def test_miner_finds_reference_nonce(self):
        target = 1 << 252
        expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, target)
        sim = fresh_sim(target)
        sim.tick(cycles=expected + 2)
        assert sim.get("found") == 1
        assert sim.get("found_nonce") == expected

    def test_digest_register_is_bit_exact(self):
        sim = fresh_sim(target=1)  # never found: keep mining
        sim.tick(cycles=3)
        # After tick k the digest register holds double-SHA(data||k-1).
        expected = int.from_bytes(
            bitcoin.reference_digest(bitcoin.DEFAULT_DATA, 2), "big"
        )
        assert sim.get("digest") == expected

    def test_miner_stops_after_found(self):
        target = 1 << 252
        expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, target)
        sim = fresh_sim(target)
        sim.tick(cycles=expected + 10)
        assert sim.get("found_nonce") == expected  # not overwritten

    def test_custom_data_block(self):
        data = bytes(range(100, 132))
        target = 1 << 252
        expected = bitcoin.find_nonce(data, target)
        src = parse(bitcoin.source(data=data, target=target))
        sim = Simulator(flatten(src, "bitcoin"), TaskHost())
        sim.tick(cycles=expected + 2)
        assert sim.get("found_nonce") == expected

    def test_bad_data_length_rejected(self):
        with pytest.raises(ValueError):
            bitcoin.source(data=b"short")


class TestQuiescenceVariant:
    def test_volatile_fraction_matches_paper(self):
        program = compile_program(bitcoin.source(quiescence=True))
        assert program.state.uses_yield
        # paper: ~96% of bitcoin's state is volatile
        assert 0.85 <= program.state.volatile_fraction <= 0.99

    def test_nonvolatile_set(self):
        program = compile_program(bitcoin.source(quiescence=True))
        captured = set(program.state.captured_names())
        assert captured == {"nonce", "found_nonce", "found", "target"}

    def test_quiescent_variant_still_mines(self):
        target = 1 << 252
        expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, target)
        sim = fresh_sim(target, quiescence=True)
        sim.tick(cycles=expected + 2)
        assert sim.get("found_nonce") == expected
