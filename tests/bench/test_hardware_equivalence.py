"""Every Table 1 benchmark, executed as transformed hardware, must track
its own software-interpreter run tick for tick — the §3 soundness claim
applied to the real workloads, not just synthetic programs."""

import pytest

from repro.core import compile_program
from repro.fabric import DE10
from repro.harness.common import bench_source_kwargs, bench_vfs
from repro.bench import BENCHMARKS
from repro.interp import Simulator, TaskHost
from repro.runtime import DirectBoardBackend, Runtime

#: (benchmark, ticks, variables to compare)
CASES = [
    ("bitcoin", 2, ["nonce", "digest", "found"]),
    ("df", 4, ["acc", "lcg", "iters"]),
    ("mips32", 30, ["pc", "instret"]),
    ("regex", 8, ["matches", "chars", "state"]),
    ("nw", 5, ["tiles", "score_acc"]),
    ("adpcm", 8, ["samples", "errsum", "pred", "index"]),
]


@pytest.mark.parametrize("name,ticks,variables", CASES)
def test_benchmark_hardware_matches_software(name, ticks, variables):
    program = compile_program(
        BENCHMARKS[name].source(**bench_source_kwargs(name))
    )

    host = TaskHost(vfs=bench_vfs(name))
    sim = Simulator(program.flat, host, env=program.env)
    for _ in range(ticks):
        if host.finished:
            break
        sim.tick()

    runtime = Runtime(program, vfs=bench_vfs(name))
    runtime.attach(DirectBoardBackend(DE10))
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(ticks)
    assert runtime.mode == "hardware"

    for var in variables:
        assert runtime.engine.get(var) == sim.get(var), (name, var)
    assert runtime.host.display_log == host.display_log


@pytest.mark.parametrize("name", ["mips32"])
def test_benchmark_memories_match(name):
    """Register file and data memory agree word for word."""
    program = compile_program(BENCHMARKS[name].source())
    host = TaskHost()
    sim = Simulator(program.flat, host, env=program.env)
    for _ in range(40):
        sim.tick()

    runtime = Runtime(program)
    runtime.attach(DirectBoardBackend(DE10))
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(40)
    slot = runtime.backend.board.slots[runtime.placement.engine_id]
    for memory in ("regs", "dmem"):
        assert slot.sim.store.memories[memory] == sim.store.memories[memory]
