"""AmorphOS substrate tests: hull, Morphlets, zones, CntrlReg."""

import pytest

from repro.amorphos import (
    Hull, Morphlet, ProtectionDomain, ProtectionError, RegisterMap,
    WORD_BITS, ZoneAllocator,
)
from repro.core import compile_program
from repro.fabric import DE10
from repro.fabric.synth import ResourceEstimate

SRC = """
module app(input wire clock);
  reg [63:0] a;
  reg [127:0] b;
  reg [7:0] mem [0:7];
  always @(posedge clock) a <= a + 1;
endmodule
"""


@pytest.fixture
def program():
    return compile_program(SRC)


class TestRegisterMap:
    def test_layout_is_word_granular(self):
        reg_map = RegisterMap.build([("a", 64), ("b", 128), ("c", 1)])
        assert reg_map.address_of("a") == 0
        assert reg_map.address_of("b") == 1
        assert reg_map.words_of("b") == 2
        assert reg_map.address_of("c") == 3
        assert reg_map.words == 4

    def test_deterministic(self):
        pairs = [("x", 32), ("y", 96)]
        assert RegisterMap.build(pairs).entries == RegisterMap.build(pairs).entries


class TestMorphlet:
    def test_create_builds_register_map(self, program):
        domain = ProtectionDomain("tenant")
        morphlet = Morphlet.create(domain, program)
        assert morphlet.port.reg_map.words >= (64 + 128 + 64) // WORD_BITS

    def test_quiescence_detection(self, program):
        domain = ProtectionDomain("tenant")
        assert not Morphlet.create(domain, program).implements_quiescence

    def test_cntrlreg_accounting(self, program):
        morphlet = Morphlet.create(ProtectionDomain("t"), program)
        words = morphlet.port.read_words("b")
        assert words == 2
        assert morphlet.port.stats.reads == 2


class TestZones:
    def test_spatial_until_full(self):
        zones = ZoneAllocator(DE10)
        small = ResourceEstimate(luts=10_000, ffs=10_000)
        placement1 = zones.try_place(1, small)
        assert placement1.spatial
        huge = ResourceEstimate(luts=DE10.luts, ffs=100)
        placement2 = zones.try_place(2, huge)
        assert not placement2.spatial
        assert 2 in zones.timeshared

    def test_release_frees_capacity(self):
        zones = ZoneAllocator(DE10)
        big = ResourceEstimate(luts=90_000, ffs=1000)
        assert zones.try_place(1, big).spatial
        assert not zones.try_place(2, big).spatial
        zones.release(1)
        assert zones.try_place(3, big).spatial

    def test_hull_overhead_reserved(self):
        zones = ZoneAllocator(DE10)
        assert zones.budget_luts < DE10.luts

    def test_utilization(self):
        zones = ZoneAllocator(DE10)
        zones.try_place(1, ResourceEstimate(luts=zones.budget_luts // 2, ffs=0))
        assert 0.45 < zones.utilization() < 0.55


class TestHull:
    def test_load_and_access(self, program):
        hull = Hull(DE10)
        domain = ProtectionDomain("alice")
        morphlet = hull.load(domain, program, ResourceEstimate(luts=100, ffs=100))
        assert hull.access(domain, morphlet.morphlet_id) is morphlet

    def test_cross_domain_access_denied(self, program):
        hull = Hull(DE10)
        alice, bob = ProtectionDomain("alice"), ProtectionDomain("bob")
        morphlet = hull.load(alice, program, ResourceEstimate(luts=1, ffs=1))
        with pytest.raises(ProtectionError):
            hull.access(bob, morphlet.morphlet_id)

    def test_same_name_different_domain_still_denied(self, program):
        """Domains are principals, not names."""
        hull = Hull(DE10)
        alice1, alice2 = ProtectionDomain("alice"), ProtectionDomain("alice")
        morphlet = hull.load(alice1, program, ResourceEstimate(luts=1, ffs=1))
        with pytest.raises(ProtectionError):
            hull.access(alice2, morphlet.morphlet_id)

    def test_unload(self, program):
        hull = Hull(DE10)
        domain = ProtectionDomain("alice")
        morphlet = hull.load(domain, program, ResourceEstimate(luts=1, ffs=1))
        hull.unload(domain, morphlet.morphlet_id)
        with pytest.raises(ProtectionError):
            hull.access(domain, morphlet.morphlet_id)

    def test_unload_foreign_denied(self, program):
        hull = Hull(DE10)
        alice, eve = ProtectionDomain("alice"), ProtectionDomain("eve")
        morphlet = hull.load(alice, program, ResourceEstimate(luts=1, ffs=1))
        with pytest.raises(ProtectionError):
            hull.unload(eve, morphlet.morphlet_id)

    def test_quiescence_capture_set_without_protocol(self, program):
        hull = Hull(DE10)
        domain = ProtectionDomain("alice")
        morphlet = hull.load(domain, program, ResourceEstimate(luts=1, ffs=1))
        names = hull.request_quiescence(morphlet.morphlet_id, lambda: True)
        # No $yield in the app: everything is captured.
        assert set(names) == {"a", "b", "mem"}

    def test_quiescence_waits_for_yield(self):
        yielding = compile_program("""
            module app(input wire clock);
              (* non_volatile *) reg [31:0] keep;
              reg [31:0] scratch;
              always @(posedge clock) begin
                scratch <= keep;
                $yield;
              end
            endmodule
        """)
        hull = Hull(DE10)
        domain = ProtectionDomain("alice")
        morphlet = hull.load(domain, yielding, ResourceEstimate(luts=1, ffs=1))
        polls = []

        def wait():
            polls.append(1)
            return len(polls) >= 3

        names = hull.request_quiescence(morphlet.morphlet_id, wait)
        assert len(polls) == 3           # waited for the yield
        assert names == ["keep"]          # captures only non-volatile
