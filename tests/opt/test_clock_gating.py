"""The clock-gating mid-end pass: detection, refusals, and the
dispatch-time early-out it licenses in the event scheduler."""

import random

from repro.interp import TaskHost, VirtualFS
from repro.interp.compile import CompiledModuleCode
from repro.interp.compile.simulator import CompiledSimulator
from repro.opt import Design
from repro.opt.passes import detect_clock_gates
from repro.opt.pipeline import optimize_module
from repro.verilog import ast, flatten, parse


def design_for(text, top=None):
    source = parse(text)
    return Design(flatten(source, top or source.modules[-1].name))


class TestDetection:
    def test_single_enable_guard_is_gated(self):
        d = design_for("""
            module m(input wire clock, input wire en);
              reg [7:0] r = 0;
              always @(posedge clock) begin
                if (en) r <= r + 1;
              end
            endmodule
        """)
        assert detect_clock_gates(d) == 1
        (gate,) = d.clock_gates.values()
        assert isinstance(gate, ast.Identifier) and gate.name == "en"

    def test_multiple_guards_or_chain(self):
        d = design_for("""
            module m(input wire clock, input wire a, input wire b);
              reg [7:0] r = 0;
              reg [7:0] s = 0;
              always @(posedge clock) begin
                if (a) r <= r + 1;
                if (b) s <= s + 1;
              end
            endmodule
        """)
        assert detect_clock_gates(d) == 1
        (gate,) = d.clock_gates.values()
        assert isinstance(gate, ast.Binary) and gate.op == "||"

    def test_else_arm_refuses_gating(self):
        d = design_for("""
            module m(input wire clock, input wire en);
              reg [7:0] r = 0;
              always @(posedge clock) begin
                if (en) r <= r + 1;
                else r <= 0;
              end
            endmodule
        """)
        assert detect_clock_gates(d) == 0
        assert d.clock_gates == {}

    def test_bare_statement_refuses_gating(self):
        d = design_for("""
            module m(input wire clock, input wire en);
              reg [7:0] r = 0;
              always @(posedge clock) begin
                if (en) r <= r + 1;
                r <= r;
              end
            endmodule
        """)
        assert detect_clock_gates(d) == 0

    def test_impure_condition_refuses_gating(self):
        d = design_for("""
            module m(input wire clock);
              reg [31:0] r = 0;
              always @(posedge clock) begin
                if ($random) r <= r + 1;
              end
            endmodule
        """)
        assert detect_clock_gates(d) == 0

    def test_star_blocks_ignored(self):
        d = design_for("""
            module m(input wire clock, input wire en, input wire [7:0] x);
              reg [7:0] y;
              always @* begin
                if (en) y = x;
              end
            endmodule
        """)
        assert detect_clock_gates(d) == 0


class TestPipelineIntegration:
    SRC = """
        module m(input wire clock, input wire en);
          reg [7:0] r = 0;
          always @(posedge clock) begin
            if (en) r <= r + 1;
          end
        endmodule
    """

    def test_o2_result_carries_gates(self):
        flat = flatten(parse(self.SRC), "m")
        result = optimize_module(flat, level=2)
        assert result.clock_gates
        assert result.pass_counts.get("gate", 0) >= 1

    def test_o0_result_has_no_gates(self):
        flat = flatten(parse(self.SRC), "m")
        result = optimize_module(flat, level=0)
        assert result.clock_gates == {}

    def test_gate_pass_is_fingerprinted(self):
        # Artifact keys must roll when the gating pass joins the
        # pipeline; "gate" appearing in the fingerprint does that.
        flat = flatten(parse(self.SRC), "m")
        result = optimize_module(flat, level=2)
        assert "gate" in result.fingerprint


GATED_BANK = """
module bank(input wire clock, input wire a, input wire b, input wire c);
  reg [15:0] r0 = 0;
  reg [15:0] r1 = 7;
  reg [15:0] r2 = 0;
  wire [15:0] sum;
  assign sum = r0 + r1;
  always @(posedge clock) begin
    if (a) r0 <= r0 + 1;
    if (b) r1 <= r1 ^ sum;
  end
  always @(posedge clock) begin
    if (c) r2 <= r2 + sum;
  end
endmodule
"""


def gated_sim(event):
    flat = flatten(parse(GATED_BANK), "bank")
    code = CompiledModuleCode(flat, opt_level=2, event=event)
    return CompiledSimulator(flat, TaskHost(VirtualFS()), code=code)


class TestGatedDispatchIdentity:
    def test_random_enable_patterns_bit_identical(self):
        """Gated early-out vs the always-sweep twin, driven by seeded
        random enable patterns: architectural state must never diverge."""
        fast = gated_sim(event=True)
        slow = gated_sim(event=False)
        assert fast.code.gate_ids
        rng = random.Random(0xC10C)
        for step in range(200):
            pattern = rng.getrandbits(3)
            for sim in (fast, slow):
                sim.set("a", pattern & 1)
                sim.set("b", (pattern >> 1) & 1)
                sim.set("c", (pattern >> 2) & 1)
                sim.tick(cycles=1)
            if step % 25 == 0:
                assert fast.store.snapshot() == slow.store.snapshot()
        assert fast.store.snapshot() == slow.store.snapshot()

    def test_quiescent_tick_executes_no_process_bodies(self):
        """The idle-cost contract: with every enable low and the design
        settled, a tick is bookkeeping only — zero statements run."""
        sim = gated_sim(event=True)
        for name in ("a", "b", "c"):
            sim.set(name, 1)
        sim.tick(cycles=4)
        for name in ("a", "b", "c"):
            sim.set(name, 0)
        sim.tick(cycles=1)
        assert sim.is_idle()
        executed = sim.stmts_executed
        sim.tick(cycles=500)
        assert sim.stmts_executed == executed
        assert sim.time >= 500

    def test_gate_skip_leaves_state_untouched(self):
        sim = gated_sim(event=True)
        sim.set("a", 1)
        sim.set("b", 0)
        sim.set("c", 0)
        sim.tick(cycles=3)
        assert sim.get("r0") == 3
        assert sim.get("r1") == 7  # b low: the xor arm never ran
        assert sim.get("r2") == 0
