"""Pipeline-level behaviour: golden output, oracle equivalence, caching.

The golden test pins the full O2 pipeline's output for one small
hierarchy (update it deliberately when pass behaviour changes); the
property tests check the real invariant — every pass's output, alone
and in the full pipeline, re-prints to parseable Verilog whose
behaviour the reference interpreter cannot distinguish from the
original's.
"""

import pytest

from repro.compiler import ArtifactStore, CompilerService
from repro.compiler.service import KIND_CODEGEN, KIND_EVENT, KIND_OPT
from repro.fuzz import generate, state_names
from repro.interp import Simulator, TaskHost
from repro.opt import Design, optimize_module, pipeline_fingerprint
from repro.opt import passes as P
from repro.verilog import flatten, parse, print_module

GOLDEN_SRC = """
module child(input wire [7:0] a, output wire [7:0] y);
  wire [7:0] dead = a ^ 8'hFF;
  assign y = a + 1;
endmodule
module top(input wire clock, input wire [7:0] x, output wire [7:0] out);
  wire [7:0] k = 8'd3 + 8'd4;
  wire [7:0] mid;
  reg [7:0] r1 = 0;
  reg [7:0] r2 = 0;
  child c(.a(x), .y(mid));
  assign out = mid + k;
  always @(posedge clock) r1 <= (x == 8'd5) ? r1 + 1 : r1;
  always @(posedge clock) r2 <= r1;
endmodule
"""

GOLDEN_O2 = """\
module top(clock, x, out);
  input clock;
  input [7:0] x;
  output [7:0] out;
  wire [7:0] k = 8'd7;
  wire [7:0] mid;
  reg [7:0] r1 = 0;
  reg [7:0] r2 = 0;
  wire [7:0] c$y;
  assign c$y = (x + 1);
  assign mid = c$y;
  assign out = (c$y + 8'd7);
  always @(posedge clock)
    begin
      r1 <= ((x == 8'd5) ? (r1 + 1) : r1);
      r2 <= r1;
    end
endmodule
"""


def test_golden_o2_snapshot():
    flat = flatten(parse(GOLDEN_SRC), "top")
    result = optimize_module(flat, level=2)
    assert print_module(result.module) == GOLDEN_O2
    assert result.two_state is True
    assert result.processes_after < result.processes_before


def test_level0_is_identity():
    flat = flatten(parse(GOLDEN_SRC), "top")
    result = optimize_module(flat, level=0)
    assert result.module is flat
    assert result.specialize is False


def test_deterministic_output():
    flat = flatten(parse(GOLDEN_SRC), "top")
    a = print_module(optimize_module(flat, level=2).module)
    b = print_module(optimize_module(flat, level=2).module)
    assert a == b


def _behaviour(module, ticks, state_of):
    host = TaskHost()
    sim = Simulator(module, host, backend="interp")
    sim.tick(cycles=ticks)
    return tuple(host.display_log), host.finished, \
        sim.store.snapshot(state_of)


#: (pass name, callable) — each run in isolation by the property test.
PASSES = [
    ("fold", P.fold_constants),
    ("const", P.propagate_constants),
    ("alias", P.forward_aliases),
    ("cse", P.eliminate_common_subexpressions),
    ("fuse", P.fuse_always_blocks),
    ("dce", P.eliminate_dead),
]


@pytest.mark.parametrize("name,fn", PASSES, ids=[n for n, _ in PASSES])
def test_pass_output_equivalent_under_interp_oracle(name, fn):
    """Pass output re-prints to parseable Verilog with interpreter-
    indistinguishable behaviour (display trace + architectural state),
    over a spread of fuzz-generated programs."""
    for seed in range(8):
        program = generate(seed)
        flat = flatten(parse(program.source), program.module.name)
        design = Design(flat)
        fn(design)
        printed = print_module(design.to_module())
        reparsed = parse(printed).modules[-1]
        ticks = min(program.ticks, 10)
        names = state_names(flat)
        assert _behaviour(flat, ticks, names) == \
            _behaviour(reparsed, ticks, names), \
            f"{name} diverged on seed {seed}"


def test_full_pipeline_equivalent_under_interp_oracle():
    for seed in range(10):
        program = generate(seed)
        flat = flatten(parse(program.source), program.module.name)
        result = optimize_module(flat, level=2)
        printed = print_module(result.module)
        reparsed = parse(printed).modules[-1]
        ticks = min(program.ticks, 10)
        names = state_names(flat)
        assert _behaviour(flat, ticks, names) == \
            _behaviour(reparsed, ticks, names), f"seed {seed}"


class TestServiceIntegration:
    def test_codegen_keyed_by_level(self):
        # Private store: entry counts below must not see the shared
        # process-wide store under REPRO_COMPILER_CACHE=1.
        service = CompilerService(ArtifactStore())
        program = service.compile_program(GOLDEN_SRC, top="top")
        o0 = service.codegen(program.flat, env=program.env,
                             digest=program.digest, opt_level=0)
        o2 = service.codegen(program.flat, env=program.env,
                             digest=program.digest, opt_level=2)
        assert o0 is not o2
        assert o0.opt_level == 0 and o2.opt_level == 2
        # Same level → shared artifact, no rebuild.
        assert service.codegen(program.flat, env=program.env,
                               digest=program.digest, opt_level=2) is o2
        # Simulator artifacts land under "event" or "codegen" depending
        # on the ambient REPRO_SIM_EVENT scheduling mode.
        assert (service.store.count(KIND_CODEGEN)
                + service.store.count(KIND_EVENT)) == 2
        assert service.store.count(KIND_OPT) == 2

    def test_fingerprints_distinct_per_level(self):
        prints = {pipeline_fingerprint(level) for level in (0, 1, 2)}
        assert len(prints) == 3

    def test_opt_levels_share_one_engine_behaviour(self):
        """O0 and O2 engines of one program agree bit-for-bit."""
        service = CompilerService()
        program = service.compile_program(GOLDEN_SRC, top="top")
        snaps = {}
        for level in (0, 2):
            code = service.codegen(program.flat, env=program.env,
                                   digest=program.digest, opt_level=level)
            sim = Simulator(program.flat, TaskHost(), env=program.env,
                            code=code)
            sim.set("x", 5)
            sim.tick(cycles=4)
            snaps[level] = {n: sim.get(n)
                            for n in ("r1", "r2", "out")}
        assert snaps[0] == snaps[2]
