"""Each mid-end pass in isolation: rewrites, refusals, and invariants."""

from repro.opt import Design
from repro.opt.ir import expr_key, width_stable
from repro.opt.passes import (
    eliminate_common_subexpressions,
    eliminate_dead,
    fold_constants,
    forward_aliases,
    fuse_always_blocks,
    propagate_constants,
    specialize_two_state,
)
from repro.verilog import ast, flatten, parse, print_module
from repro.verilog.width import WidthEnv


def design_for(text, top=None):
    source = parse(text)
    flat = flatten(source, top or source.modules[-1].name)
    return Design(flat)


def raw_design(text):
    """Design over the parsed module directly — elaboration pre-folds
    literal trees nowadays, so isolated-fold tests skip flatten()."""
    return Design(parse(text).modules[-1])


class TestFoldConstants:
    def test_folds_literal_trees(self):
        d = raw_design("""
            module m(input wire clock, output wire [7:0] y);
              assign y = (8'd2 + 8'd3) * 8'd4;
            endmodule
        """)
        assert fold_constants(d) > 0
        printed = print_module(d.to_module())
        assert "8'd20" in printed

    def test_subtraction_underflow_not_folded(self):
        """1 - 2 masks differently at different context widths."""
        d = raw_design("""
            module m(input wire clock, output wire [15:0] y);
              assign y = (8'd1 - 8'd2) + 16'd0;
            endmodule
        """)
        fold_constants(d)
        assert "-" in print_module(d.to_module())

    def test_signed_literals_left_alone(self):
        d = raw_design("""
            module m(input wire clock, output wire y);
              assign y = 8'sd3 < 8'sd4;
            endmodule
        """)
        assert fold_constants(d) == 0


class TestPropagateConstants:
    SRC = """
        module m(input wire clock, output wire [7:0] out);
          wire [7:0] k = 8'd3 + 8'd4;
          wire [7:0] mid;
          assign mid = k + 1;
          assign out = mid;
        endmodule
    """

    def test_constant_wire_reads_become_literals(self):
        d = design_for(self.SRC)
        assert propagate_constants(d) > 0
        printed = print_module(d.to_module())
        # mid's driver folded to a literal; k's defining driver stays
        # (the 32-bit result width comes from the unsized `+ 1`).
        assert "assign mid = 32'd8;" in printed
        assert "wire [7:0] k = 8'd7;" in printed
        assert "assign out = 8'd8;" in printed

    def test_ports_never_propagated(self):
        d = design_for("""
            module m(input wire [7:0] a, output wire [7:0] y);
              assign y = a;
            endmodule
        """)
        assert propagate_constants(d) == 0

    def test_sensitivity_lists_untouched(self):
        d = design_for("""
            module m(input wire clock, output reg [7:0] r);
              wire tick = 1'b1;
              always @(posedge tick) r <= r + 1;
            endmodule
        """)
        propagate_constants(d)
        printed = print_module(d.to_module())
        assert "@(posedge tick)" in printed


class TestForwardAliases:
    def test_flattening_chain_collapses(self):
        d = design_for("""
            module child(input wire [7:0] a, output wire [7:0] y);
              assign y = a + 1;
            endmodule
            module top(input wire clock, input wire [7:0] x,
                       output wire [7:0] out);
              wire [7:0] mid;
              child c(.a(x), .y(mid));
              assign out = mid;
            endmodule
        """, "top")
        assert forward_aliases(d) > 0
        printed = print_module(d.to_module())
        assert "assign c$y = (x + 1);" in printed

    def test_blocking_writer_keeps_stale_read(self):
        """A body that blocking-writes the alias source mid-block must
        keep reading the wire (it still holds the pre-write value)."""
        d = design_for("""
            module m(input wire clock, output reg [7:0] r);
              reg [7:0] x = 0;
              wire [7:0] w;
              assign w = x;
              always @(posedge clock) begin
                x = x + 1;
                r <= w;
              end
            endmodule
        """)
        forward_aliases(d)
        printed = print_module(d.to_module())
        assert "r <= w;" in printed

    def test_width_mismatch_refused(self):
        d = design_for("""
            module m(input wire clock, input wire [7:0] x,
                     output wire [7:0] out);
              wire [3:0] w;
              assign w = x;
              assign out = w;
            endmodule
        """)
        assert forward_aliases(d) == 0


class TestCse:
    def test_repeated_stable_subexpr_hoisted(self):
        d = design_for("""
            module m(input wire [7:0] a, input wire [7:0] b,
                     output wire y, output wire z);
              assign y = (a > (b ^ 8'd7)) & a[0];
              assign z = (a > (b ^ 8'd7)) & b[0];
            endmodule
        """)
        assert eliminate_common_subexpressions(d) >= 1
        printed = print_module(d.to_module())
        assert "__cse0" in printed

    def test_width_unstable_subexpr_refused(self):
        """a + b carries into wider contexts; hoisting would truncate."""
        d = design_for("""
            module m(input wire [7:0] a, input wire [7:0] b,
                     output wire [15:0] y, output wire [15:0] z);
              assign y = (a + b) + 16'd0;
              assign z = (a + b) + 16'd1;
            endmodule
        """)
        assert eliminate_common_subexpressions(d) == 0

    def test_width_stable_predicate(self):
        d = design_for("""
            module m(input wire [7:0] a, output wire y);
              assign y = a[2];
            endmodule
        """)
        env = d.env
        a = ast.Identifier("a")
        assert width_stable(ast.Binary("==", a, a), env)
        assert width_stable(ast.Index(a, ast.Number(2)), env)
        assert not width_stable(ast.Binary("+", a, a), env)
        assert not width_stable(ast.Unary("~", a), env)


class TestFusion:
    def test_identical_sensitivity_runs_fuse(self):
        d = design_for("""
            module m(input wire clock);
              reg [7:0] r0 = 0;
              reg [7:0] r1 = 0;
              always @(posedge clock) r0 <= r0 + 1;
              always @(posedge clock) r1 <= r0;
            endmodule
        """)
        assert fuse_always_blocks(d) == 1
        assert sum(isinstance(i, ast.Always) for i in d.items) == 1

    def test_stale_comb_read_blocks_fusion(self):
        """B reads a wire whose cone A blocking-writes: unfused, the
        assign re-settles between them; fused, B would read stale."""
        d = design_for("""
            module m(input wire clock, output reg [7:0] out);
              reg [7:0] x = 0;
              wire [7:0] w;
              assign w = x + 1;
              always @(posedge clock) x = x + 1;
              always @(posedge clock) out <= w;
            endmodule
        """)
        assert fuse_always_blocks(d) == 0

    def test_different_sensitivity_not_fused(self):
        d = design_for("""
            module m(input wire clock, input wire other);
              reg [7:0] r0 = 0;
              reg [7:0] r1 = 0;
              always @(posedge clock) r0 <= r0 + 1;
              always @(posedge other) r1 <= r1 + 1;
            endmodule
        """)
        assert fuse_always_blocks(d) == 0


class TestDce:
    def test_hierarchy_residue_removed(self):
        d = design_for("""
            module child(input wire [7:0] a, output wire [7:0] y,
                         output wire [7:0] unused);
              assign y = a + 1;
              assign unused = a ^ 8'hFF;
            endmodule
            module top(input wire clock, input wire [7:0] x,
                       output wire [7:0] out);
              wire [7:0] mid;
              child c(.a(x), .y(mid));
              assign out = mid;
            endmodule
        """, "top")
        procs, sigs = eliminate_dead(d)
        names = {i.name for i in d.items if isinstance(i, ast.Decl)}
        assert "c$unused" not in names
        assert procs >= 1 and sigs >= 1

    def test_source_named_wires_survive(self):
        """Hand-written names stay on the get()/snapshot surface even
        when nothing reads them."""
        d = design_for("""
            module m(input wire [7:0] a);
              wire [7:0] scratch = a + 1;
            endmodule
        """)
        procs, sigs = eliminate_dead(d)
        assert (procs, sigs) == (0, 0)

    def test_keep_set_roots_survive(self):
        source = parse("""
            module child(input wire [7:0] a, output wire [7:0] y);
              assign y = a;
            endmodule
            module top(input wire [7:0] x, output wire [7:0] o);
              child c(.a(x));
              assign o = x;
            endmodule
        """)
        flat = flatten(source, "top")
        unkept = Design(flat)
        eliminate_dead(unkept)
        kept = Design(flat, keep=frozenset({"c$y"}))
        eliminate_dead(kept)
        unkept_names = {i.name for i in unkept.items if isinstance(i, ast.Decl)}
        kept_names = {i.name for i in kept.items if isinstance(i, ast.Decl)}
        assert "c$y" not in unkept_names
        assert "c$y" in kept_names


class TestTwoState:
    def test_plain_design_licensed(self):
        d = design_for("""
            module m(input wire clock, output reg [3:0] r);
              always @(posedge clock) r <= r + 1;
            endmodule
        """)
        assert specialize_two_state(d) == 0
        assert d.two_state is True

    def test_casez_labels_exempt(self):
        d = design_for("""
            module m(input wire [3:0] a, output reg y);
              always @(*) casez (a)
                4'b1??? : y = 1;
                default : y = 0;
              endcase
            endmodule
        """)
        assert specialize_two_state(d) == 0
        assert d.two_state is True


def test_expr_key_ignores_positions():
    a1 = parse("module m(input wire x); wire y = x + 1; endmodule")
    a2 = parse("module m(input wire x);\n\n wire y = x + 1; endmodule")
    e1 = a1.modules[0].decls()[1].init
    e2 = a2.modules[0].decls()[1].init
    assert expr_key(e1) == expr_key(e2)


class TestReviewRegressions:
    def test_impure_assign_keeps_dead_target_decl(self):
        """A live (impure) assign must keep its otherwise-dead target
        declared — dropping the decl leaves a dangling lvalue that
        crashes codegen."""
        d = design_for("""
            module u(input wire clock, output wire [7:0] o);
              wire [7:0] tmp;
              assign tmp = $random;
              assign o = 8'd1;
            endmodule
            module top(input wire clock, output wire [7:0] o);
              u u(.clock(clock), .o(o));
            endmodule
        """, "top")
        eliminate_dead(d)
        names = {i.name for i in d.items if isinstance(i, ast.Decl)}
        assert "u$tmp" in names

    def test_cse_tie_break_handles_unsized_widths(self):
        """Equal-size candidates whose keys differ only in a literal's
        width (None vs int) must not crash the tie-break."""
        d = design_for("""
            module m(input wire [7:0] a, input wire x, output wire y,
                     output wire z, output wire p, output wire q);
              assign y = x & (a > (a ^ 5));
              assign z = x & (a > (a ^ 5));
              assign p = x & (a > (a ^ 3'd5));
              assign q = x & (a > (a ^ 3'd5));
            endmodule
        """)
        assert eliminate_common_subexpressions(d) == 2
