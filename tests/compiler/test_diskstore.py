"""Disk artifact tier: frames, codecs, eviction, faults, warm restarts."""

import os

import pytest

from repro.compiler import ArtifactStore, CompilerService, DiskArtifactStore
from repro.compiler.artifacts import resolve_store
from repro.compiler.diskstore import (
    frame_payload, unframe_payload,
)
from repro.fabric.faults import FaultPlan
from repro.interp import Simulator, TaskHost
from repro.interp.compile.batch import HAVE_NUMPY

SRC = """
module app(input wire clock);
  reg [31:0] n;
  reg [31:0] acc;
  wire [31:0] twist;
  assign twist = acc ^ (n << 3);
  initial n = 0;
  initial acc = 1;
  always @(posedge clock) begin
    n <= n + 1;
    acc <= acc + (acc << 1) + n + (twist & 32'h f);
    if (n % 7 == 0) $display("n=%0d acc=%0d", n, acc);
  end
endmodule
"""


class TestFrame:
    def test_roundtrip(self):
        assert unframe_payload(frame_payload(b"hello")) == b"hello"

    def test_truncation_is_a_miss(self):
        data = frame_payload(b"payload bytes")
        for cut in (0, 3, len(data) // 2, len(data) - 1):
            assert unframe_payload(data[:cut]) is None

    def test_bitflip_is_a_miss(self):
        data = bytearray(frame_payload(b"payload bytes"))
        data[len(data) // 2] ^= 0xFF
        assert unframe_payload(bytes(data)) is None

    def test_foreign_interpreter_tag_is_a_miss(self, monkeypatch):
        data = frame_payload(b"payload")
        monkeypatch.setattr("repro.compiler.diskstore._cache_tag",
                            lambda: b"other-python-tag")
        assert unframe_payload(data) is None


class TestDiskArtifactStore:
    def test_store_load_roundtrip(self, tmp_path):
        disk = DiskArtifactStore(tmp_path)
        assert disk.load("k", "key") is None
        assert disk.store("k", "key", {"a": 1}, seconds=2.5)
        assert disk.load("k", "key") == ({"a": 1}, 2.5)
        assert disk.contains("k", "key")
        assert disk.stats()["entries"] == 1

    def test_kinds_are_disjoint_directories(self, tmp_path):
        disk = DiskArtifactStore(tmp_path)
        disk.store("x", "same-key", 1)
        disk.store("y", "same-key", 2)
        assert disk.load("x", "same-key")[0] == 1
        assert disk.load("y", "same-key")[0] == 2
        assert disk.count("x") == 1 and disk.count() == 2

    def test_corrupt_file_is_dropped_and_missed(self, tmp_path):
        disk = DiskArtifactStore(tmp_path)
        disk.store("k", "key", [1, 2, 3])
        path = disk.path_for("k", "key")
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) // 2)
            fh.write(b"\xff\xff\xff\xff")
        assert disk.load("k", "key") is None
        assert disk.corrupt == 1
        assert not os.path.exists(path), "corrupt artifacts are unlinked"

    def test_unserializable_value_is_skipped(self, tmp_path):
        disk = DiskArtifactStore(tmp_path)
        assert not disk.store("k", "key", lambda: None)  # local closure
        assert disk.stats()["unserializable"] == 1
        assert disk.load("k", "key") is None

    def test_lru_eviction_by_mtime(self, tmp_path):
        disk = DiskArtifactStore(tmp_path, max_entries=3)
        for i in range(3):
            disk.store("k", f"key-{i}", i)
            # Explicit, strictly increasing mtimes: filesystem clocks
            # are too coarse to order writes this close together.
            os.utime(disk.path_for("k", f"key-{i}"), (i, i))
        # A hit on the oldest bumps it to "now", so key-1 is now LRU.
        assert disk.load("k", "key-0") is not None
        disk.store("k", "key-3", 3)
        assert disk.evictions == 1
        assert disk.load("k", "key-1") is None
        assert disk.load("k", "key-0") is not None
        assert disk.load("k", "key-3") is not None

    def test_injected_torn_write_reads_as_miss(self, tmp_path):
        disk = DiskArtifactStore(tmp_path, faults=FaultPlan("disk_torn@0"))
        assert disk.store("k", "key", "value")  # lands, but truncated
        assert disk.load("k", "key") is None
        assert disk.corrupt == 1

    def test_injected_bitrot_reads_as_miss(self, tmp_path):
        disk = DiskArtifactStore(tmp_path, faults=FaultPlan("disk_bitrot@0"))
        assert disk.store("k", "key", "value")
        assert disk.load("k", "key") is None
        assert disk.corrupt == 1

    def test_injected_enospc_skips_the_write(self, tmp_path):
        disk = DiskArtifactStore(tmp_path, faults=FaultPlan("disk_enospc@0"))
        assert not disk.store("k", "key", "value")
        assert disk.write_errors == 1
        assert not disk.contains("k", "key")
        assert disk.store("k", "key", "value")  # next opportunity is clean
        assert disk.load("k", "key") == ("value", 0.0)


class TestWriteThroughTier:
    def test_put_writes_through_and_get_promotes(self, tmp_path):
        disk = DiskArtifactStore(tmp_path)
        store = ArtifactStore(disk=disk)
        store.put("k", "key", 42, seconds=1.5)
        assert disk.contains("k", "key")

        fresh = ArtifactStore(disk=disk)  # "new process", same directory
        assert fresh.get("k", "key") == 42
        stats = fresh.stats("k")
        assert stats.hits == 1 and stats.disk_hits == 1
        assert stats.seconds_saved == 1.5
        # Promoted into memory: the next get never touches the disk.
        before = disk.hits
        assert fresh.get("k", "key") == 42
        assert disk.hits == before
        assert fresh.stats("k").disk_hits == 1

    def test_contains_spans_both_tiers(self, tmp_path):
        disk = DiskArtifactStore(tmp_path)
        disk.store("k", "cold", 1)
        store = ArtifactStore(disk=disk)
        assert store.contains("k", "cold")
        assert not store.contains("k", "absent")
        assert store.stats("k").hits == 0  # probes are stats-free

    def test_resolve_store_mounts_the_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        resolved = resolve_store(None)
        assert resolved.disk is not None
        assert resolved.disk.root == str(tmp_path)
        # An explicitly constructed store stays memory-only.
        explicit = ArtifactStore()
        assert resolve_store(explicit) is explicit
        assert explicit.disk is None


class TestCrossProcessWarmth:
    def _run(self, code):
        host = TaskHost()
        service = CompilerService(ArtifactStore())
        program = service.compile_program(SRC)
        sim = Simulator(program.flat, host, env=program.env,
                        backend="compiled", code=code)
        sim.tick(cycles=20)
        return tuple(host.display_log), sim.store.snapshot(["n", "acc"])

    def test_codegen_artifacts_survive_restart_bit_identically(self, tmp_path):
        service = CompilerService(ArtifactStore(disk=DiskArtifactStore(tmp_path)))
        program = service.compile_program(SRC)
        code = service.codegen(program.flat, env=program.env,
                               digest=program.digest, event=False)
        want = self._run(code)

        # A fresh process: new memory store, same directory.
        service2 = CompilerService(
            ArtifactStore(disk=DiskArtifactStore(tmp_path)))
        program2 = service2.compile_program(SRC)
        code2 = service2.codegen(program2.flat, env=program2.env,
                                 digest=program2.digest, event=False)
        assert service2.store.stats().disk_hits > 0
        assert code2.source == code.source
        assert self._run(code2) == want

    def test_warmth_probe_sees_disk_artifacts(self, tmp_path):
        service = CompilerService(ArtifactStore(disk=DiskArtifactStore(tmp_path)))
        program = service.compile_program(SRC)
        service.codegen(program.flat, env=program.env, digest=program.digest,
                        event=False)
        service2 = CompilerService(
            ArtifactStore(disk=DiskArtifactStore(tmp_path)))
        warmth = service2.warmth(program.digest)
        assert warmth["codegen"], "disk tier must count as warmth"

    @pytest.mark.skipif(not HAVE_NUMPY, reason="batch backend needs NumPy")
    def test_batch_codec_rebuilds_vector_closures(self, tmp_path):
        from repro.interp.compile.batch import BatchedModuleCode, BatchUnsupported

        service = CompilerService(ArtifactStore(disk=DiskArtifactStore(tmp_path)))
        program = service.compile_program(SRC)
        try:
            service.batch(program.flat, env=program.env, digest=program.digest)
        except BatchUnsupported as exc:
            pytest.skip(f"module not batch-licensed here: {exc}")
        assert service.store.stats("batch").disk_hits == 0

        service2 = CompilerService(
            ArtifactStore(disk=DiskArtifactStore(tmp_path)))
        program2 = service2.compile_program(SRC)
        rebuilt = service2.batch(program2.flat, env=program2.env,
                                 digest=program2.digest)
        assert isinstance(rebuilt, BatchedModuleCode)
        assert service2.store.stats("batch").disk_hits == 1
