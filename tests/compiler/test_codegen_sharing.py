"""Codegen sharing must be invisible: shared-artifact engines stay
bit-identical to freshly-compiled engines.

Two engines built against one :class:`CompiledModuleCode` share the
analysis, schedule templates and code object but nothing mutable —
divergent inputs, save/restore and migration round-trips must behave
exactly as if each engine had compiled privately, under both the
compiled backend and the interp oracle.
"""

import pytest

from repro.bench import BENCHMARKS
from repro.compiler import ArtifactStore, CompilerService
from repro.fabric import DE10, F1
from repro.harness.common import bench_vfs
from repro.hypervisor import Hypervisor
from repro.hypervisor.migration import migrate
from repro.interp import Simulator, TaskHost
from repro.runtime import DirectBoardBackend, Runtime

COUNTER = """
module counter(input wire clock, input wire [7:0] step,
               output wire [31:0] out);
  reg [31:0] n = 0;
  reg [31:0] mem [0:15];
  always @(posedge clock) begin
    n <= n + step;
    mem[n[3:0]] <= n;
  end
  assign out = n;
endmodule
"""

BACKENDS = ("compiled", "interp")


def _shared_pair(source):
    """Two engines sharing one codegen artifact, plus a fresh engine.

    Forces ``backend="compiled"`` — these tests exercise compiled-code
    sharing specifically, whatever REPRO_SIM_BACKEND says.
    """
    service = CompilerService(ArtifactStore())
    program = service.compile_program(source)
    code = service.codegen(program.flat, env=program.env,
                           digest=program.digest)
    shared_a = Simulator(program.flat, TaskHost(), env=program.env,
                         backend="compiled", code=code)
    shared_b = Simulator(program.flat, TaskHost(), env=program.env,
                         backend="compiled", code=code)
    assert shared_a.code is shared_b.code
    fresh = Simulator(program.flat, TaskHost(), env=program.env,
                      backend="compiled")
    return shared_a, shared_b, fresh


class TestSharedEnginesDiverge:
    def test_divergent_inputs_stay_isolated(self):
        shared_a, shared_b, fresh = _shared_pair(COUNTER)
        for sim in (shared_a, shared_b, fresh):
            sim.set("step", 1)
        shared_a.tick("clock", 7)
        shared_b.set("step", 3)
        shared_b.tick("clock", 4)
        fresh.tick("clock", 7)
        assert shared_a.get("n") == 7
        assert shared_b.get("n") == 12
        # The shared engine matches a freshly-compiled engine bit for bit.
        assert shared_a.store.snapshot() == fresh.store.snapshot()

    def test_memories_not_aliased_between_engines(self):
        shared_a, shared_b, _ = _shared_pair(COUNTER)
        shared_a.set("step", 1)
        shared_a.tick("clock", 5)
        # mem[k] holds k: the mem writer's index is evaluated when the
        # statement executes (LRM §9.2.2), before n's own non-blocking
        # assign latches — matching the hardware transform's __wa capture.
        assert shared_a.store.mem_get("mem", 3) == 3
        assert shared_b.store.mem_get("mem", 3) == 0

    def test_dirty_tracking_is_per_engine(self):
        shared_a, shared_b, _ = _shared_pair(COUNTER)
        shared_a.set("step", 9)
        # B's dirty structures must be untouched by A's write.
        assert not shared_b.store.dirty_list
        shared_b.step()
        assert shared_b.get("step") == 0


@pytest.mark.parametrize("name,ticks", [("mips32", 48), ("bitcoin", 16)])
def test_shared_codegen_matches_fresh_on_benchmarks(name, ticks):
    source = BENCHMARKS[name].source()
    service = CompilerService(ArtifactStore())
    program = service.compile_program(source)
    code = service.codegen(program.flat, env=program.env,
                           digest=program.digest)

    def run(shared):
        host = TaskHost(bench_vfs(name, scale=1 << 12))
        sim = Simulator(program.flat, host, env=program.env,
                        code=code if shared else None)
        sim.tick(cycles=ticks)
        return sim.store.snapshot(), list(host.display_log), host.finished

    assert run(shared=True) == run(shared=False)


class TestSaveRestoreUnderSharing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_context_round_trip(self, backend):
        service = CompilerService(ArtifactStore())
        first = Runtime(COUNTER, compiler=service, sim_backend=backend)
        second = Runtime(COUNTER, compiler=service, sim_backend=backend)
        first.engine.set("step", 2)
        first.tick(6)
        context = first.save_context()
        second.restore_context(context)
        assert second.engine.get("n") == first.engine.get("n") == 12
        second.tick(1)
        first.tick(1)
        assert second.engine.get("n") == first.engine.get("n")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_migration_round_trip(self, backend):
        service = CompilerService(ArtifactStore())
        source_rt = Runtime(COUNTER, name="src", compiler=service,
                            sim_backend=backend)
        dest_rt = Runtime(COUNTER, name="dst", compiler=service,
                          sim_backend=backend)
        oracle = Runtime(COUNTER, name="oracle", sim_backend="interp")
        for rt in (source_rt, oracle):
            rt.engine.set("step", 1)
            rt.tick(9)
        report = migrate(source_rt, dest_rt)
        assert report.state_bits > 0
        dest_rt.tick(3)
        oracle.tick(3)
        assert dest_rt.engine.get("n") == oracle.engine.get("n") == 12
        assert (dest_rt.engine.snapshot()["mem"]
                == oracle.engine.snapshot()["mem"])


class TestHardwareSlotsShareCodegen:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_direct_backend_hardware_matches_oracle(self, backend):
        service = CompilerService(ArtifactStore())
        runtime = Runtime(COUNTER, compiler=service, sim_backend=backend)
        runtime.engine.set("step", 1)
        board = DirectBoardBackend(DE10, sim_backend=backend,
                                   compiler=service)
        runtime.tick(2)
        runtime.attach(board)
        runtime._hw_ready_at = runtime.sim_time
        runtime.tick(4)
        assert runtime.mode == "hardware"
        assert runtime.engine.get("n") == 6

    def test_two_tenants_share_one_slot_codegen(self):
        service = CompilerService(ArtifactStore())
        hypervisor = Hypervisor(F1, compiler=service,
                                sim_backend="compiled")
        program = service.compile_program(COUNTER)
        client_a = hypervisor.connect("a")
        client_b = hypervisor.connect("b")
        pa = client_a.place(program)
        pb = client_b.place(program)
        slot_a = hypervisor.board.slots[pa.engine_id]
        slot_b = hypervisor.board.slots[pb.engine_id]
        # One codegen artifact, two isolated engine states.
        assert slot_a.sim.code is slot_b.sim.code
        assert slot_a.sim.store is not slot_b.sim.store
        # The shared artifact lives under "event" or "codegen" depending
        # on the ambient REPRO_SIM_EVENT scheduling mode.
        assert (service.store.stats("codegen").hits
                + service.store.stats("event").hits) >= 1

    def test_shared_slots_run_independently(self):
        service = CompilerService(ArtifactStore())
        hypervisor = Hypervisor(F1, compiler=service)
        program = service.compile_program(COUNTER)
        runtimes = []
        for i in range(3):
            rt = Runtime(program, name=f"t{i}", compiler=service)
            rt.engine.set("step", i + 1)
            client = hypervisor.connect(f"t{i}")
            rt.tick(1)
            rt.attach(client)
            rt._hw_ready_at = rt.sim_time
            rt.tick(1)
            assert rt.mode == "hardware"
            runtimes.append(rt)
        for i, rt in enumerate(runtimes):
            rt.tick(4)
            assert rt.engine.get("n") == 6 * (i + 1)
