"""Artifact store and compiler-service unit tests."""

from repro.compiler import (
    ArtifactStore, CompilerService, default_service, shared_store,
    text_digest,
)
from repro.fabric import CompilationCache, DE10, SynthOptions
from repro.fabric.bitstream import BitstreamCompiler
from repro.verilog import parse

SRC = """
module helper(input wire c, output wire o);
  assign o = ~c;
endmodule
module top(input wire clock);
  wire inv;
  reg [7:0] n = 0;
  helper h(.c(clock), .o(inv));
  always @(posedge clock) n <= n + 1;
endmodule
"""


class TestArtifactStore:
    def test_miss_then_hit(self):
        store = ArtifactStore()
        assert store.get("k", "a") is None
        store.put("k", "a", 42)
        assert store.get("k", "a") == 42
        stats = store.stats("k")
        assert stats.hits == 1 and stats.misses == 1

    def test_peek_is_silent(self):
        store = ArtifactStore()
        store.put("k", "a", 1)
        assert store.peek("k", "a") == 1
        assert store.peek("k", "b") is None
        assert store.stats().hits == 0 and store.stats().misses == 0

    def test_kinds_are_disjoint(self):
        store = ArtifactStore()
        store.put("x", "same-key", 1)
        store.put("y", "same-key", 2)
        assert store.get("x", "same-key") == 1
        assert store.get("y", "same-key") == 2
        assert store.count("x") == 1 and len(store) == 2

    def test_get_or_build_builds_once(self):
        store = ArtifactStore()
        calls = []
        build = lambda: calls.append(1) or "artifact"
        assert store.get_or_build("k", "a", build) == "artifact"
        assert store.get_or_build("k", "a", build) == "artifact"
        assert len(calls) == 1

    def test_aggregate_stats_sum_kinds(self):
        store = ArtifactStore()
        store.get("a", "miss")
        store.put("b", "x", 1, seconds=2.5)
        store.get("b", "x")
        total = store.stats()
        assert total.hits == 1 and total.misses == 1
        assert total.seconds_saved == 2.5

    def test_lru_eviction_bounds_growth(self):
        store = ArtifactStore(max_entries=2)
        store.put("k", "a", 1)
        store.put("k", "b", 2)
        store.get("k", "a")        # touch: "b" is now least recent
        store.put("k", "c", 3)     # evicts "b"
        assert store.peek("k", "b") is None
        assert store.peek("k", "a") == 1 and store.peek("k", "c") == 3
        assert store.stats("k").evictions == 1
        assert len(store) == 2

    def test_clear_kind_resets_only_that_kind(self):
        store = ArtifactStore()
        store.put("a", "x", 1)
        store.put("b", "y", 2)
        store.get("a", "x")
        store.clear("a")
        assert store.peek("a", "x") is None
        assert store.peek("b", "y") == 2
        assert store.stats("a").hits == 0


class TestArtifactStoreEvictionOrder:
    """LRU order and counters under interleaved hit/miss/evict traffic."""

    def test_gets_refresh_recency_puts_evict_oldest(self):
        store = ArtifactStore(max_entries=3)
        store.put("k", "a", 1)
        store.put("k", "b", 2)
        store.put("k", "c", 3)
        store.get("k", "a")        # order now b, c, a
        store.put("k", "d", 4)     # evicts b
        store.get("k", "c")        # order now a, d, c (a oldest)
        store.put("k", "e", 5)     # evicts a
        assert store.peek("k", "b") is None
        assert store.peek("k", "a") is None
        assert [key for key in ("c", "d", "e")
                if store.peek("k", key) is not None] == ["c", "d", "e"]
        assert store.stats("k").evictions == 2

    def test_peek_does_not_refresh_recency(self):
        store = ArtifactStore(max_entries=2)
        store.put("k", "a", 1)
        store.put("k", "b", 2)
        store.peek("k", "a")       # silent: "a" stays oldest
        store.put("k", "c", 3)     # evicts "a", not "b"
        assert store.peek("k", "a") is None
        assert store.peek("k", "b") == 2

    def test_put_over_existing_key_does_not_evict(self):
        store = ArtifactStore(max_entries=2)
        store.put("k", "a", 1)
        store.put("k", "b", 2)
        store.put("k", "a", 10)    # replace, not insert
        assert len(store) == 2
        assert store.stats("k").evictions == 0
        assert store.get("k", "a") == 10
        assert store.get("k", "b") == 2

    def test_interleaved_hit_miss_evict_counters(self):
        store = ArtifactStore(max_entries=2)
        sequence = [
            ("get", "x", None),    # miss
            ("put", "x", 1),
            ("get", "x", 1),       # hit
            ("put", "y", 2),
            ("get", "y", 2),       # hit
            ("put", "z", 3),       # evicts x (oldest)
            ("get", "x", None),    # miss again after eviction
            ("get", "z", 3),       # hit
        ]
        for op, key, expected in sequence:
            if op == "put":
                store.put("k", key, expected)
            else:
                assert store.get("k", key) == expected
        stats = store.stats("k")
        assert (stats.hits, stats.misses, stats.evictions) == (3, 2, 1)
        # The all-kinds aggregate sees the same single-kind traffic.
        total = store.stats()
        assert (total.hits, total.misses, total.evictions) == (3, 2, 1)

    def test_eviction_attributes_to_the_evicted_kind(self):
        store = ArtifactStore(max_entries=2)
        store.put("old", "a", 1)
        store.put("new", "b", 2)
        store.put("new", "c", 3)   # evicts ("old", "a")
        assert store.stats("old").evictions == 1
        assert store.stats("new").evictions == 0
        assert store.count("old") == 0 and store.count("new") == 2

    def test_get_or_build_rebuilds_after_eviction(self):
        store = ArtifactStore(max_entries=1)
        builds = []
        build = lambda: builds.append(1) or len(builds)
        assert store.get_or_build("k", "a", build) == 1
        store.put("k", "b", 99)    # evicts "a"
        assert store.get_or_build("k", "a", build) == 2
        assert len(builds) == 2
        stats = store.stats("k")
        assert stats.misses == 2 and stats.evictions == 2

    def test_seconds_saved_accumulates_per_hit(self):
        store = ArtifactStore()
        store.put("k", "a", 1, seconds=1.5)
        store.get("k", "a")
        store.get("k", "a")
        assert store.stats("k").seconds_saved == 3.0


class TestCompilationCacheView:
    def test_view_shares_store_with_service(self):
        store = ArtifactStore()
        cache = CompilationCache(store=store)
        program = CompilerService(store).compile_program(SRC)
        bs = BitstreamCompiler(DE10).compile(
            program.transform.module, program.hardware_text
        )
        cache.insert("de10", "o", bs)
        assert store.count("bitstream") == 1
        assert cache.lookup("de10", "o", bs.digest) is bs
        assert cache.stats.hits == 1
        # The store aggregate sees the same traffic.
        assert store.stats().hits >= 1

    def test_bounded_cache_counts_evictions(self):
        cache = CompilationCache(max_entries=1)
        program = CompilerService().compile_program(SRC)
        bs = BitstreamCompiler(DE10).compile(
            program.transform.module, program.hardware_text
        )
        cache.insert("de10", "a", bs)
        cache.insert("f1", "b", bs)
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        assert cache.lookup("de10", "a", bs.digest) is None


class TestCompilerService:
    def test_program_cached_by_content(self):
        service = CompilerService(ArtifactStore())
        assert service.compile_program(SRC) is service.compile_program(SRC)

    def test_text_and_parsed_input_converge(self):
        service = CompilerService(ArtifactStore())
        from_text = service.compile_program(SRC)
        from_parsed = service.compile_program(parse(SRC))
        assert from_parsed is from_text

    def test_module_input_has_canonical_source(self):
        # A flattened module and the text it came from canonicalize to
        # the same printed source (and therefore the same digest), even
        # though they enter the pipeline as different kinds.
        service = CompilerService(ArtifactStore())
        from_text = service.compile_program(SRC)
        from_module = service.compile_program(from_text.flat)
        assert from_module.source == from_text.source
        assert from_module.digest == from_text.digest

    def test_source_is_printer_canonical_for_all_kinds(self):
        # Reformatting the raw text misses the raw-digest alias but
        # converges on the printer-canonical program key: one artifact.
        service = CompilerService(ArtifactStore())
        reformatted = SRC.replace("  ", "      ")
        a = service.compile_program(SRC)
        b = service.compile_program(reformatted)
        assert a is b
        assert a.digest == text_digest(a.source)

    def test_top_selects_distinct_programs(self):
        service = CompilerService(ArtifactStore())
        assert service.compile_program(SRC).name == "top"
        assert service.compile_program(SRC, top="helper").name == "helper"

    def test_codegen_shared_by_digest(self):
        service = CompilerService(ArtifactStore())
        program = service.compile_program(SRC)
        code_a = service.codegen(program.flat, env=program.env,
                                 digest=program.digest)
        code_b = service.codegen(program.flat, env=program.env,
                                 digest=program.digest)
        assert code_a is code_b

    def test_estimate_cached_and_env_tagged(self):
        service = CompilerService(ArtifactStore())
        program = service.compile_program(SRC)
        options = SynthOptions()
        hw = service.estimate(program.transform.module, program.hardware_env,
                              options, digest=program.hardware_digest,
                              env_tag="hw")
        again = service.estimate(program.transform.module,
                                 program.hardware_env, options,
                                 digest=program.hardware_digest, env_tag="hw")
        assert hw is again
        flat_env = service.estimate(program.transform.module, program.env,
                                    options, digest=program.hardware_digest,
                                    env_tag="flatenv")
        assert flat_env is not hw  # different env, different artifact

    def test_default_service_private_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILER_CACHE", raising=False)
        a = default_service()
        b = default_service()
        assert a.store is not b.store
        assert a.store is not shared_store()

    def test_default_service_shared_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILER_CACHE", "1")
        a = default_service()
        b = default_service()
        assert a.store is b.store is shared_store()


class TestSynthOptionsKey:
    def test_key_deterministic_and_discriminating(self):
        base = SynthOptions()
        assert base.key == SynthOptions().key
        assert SynthOptions(anti_congestion=True).key != base.key
        assert SynthOptions(state_access_bits=8).key != base.key

    def test_captured_names_order_stable(self):
        a = SynthOptions(captured_names=frozenset(["x", "y", "z"]))
        b = SynthOptions(captured_names=frozenset(["z", "y", "x"]))
        assert a.key == b.key
        assert a.key != SynthOptions(captured_names=frozenset(["x"])).key
        assert a.key != SynthOptions().key  # capture-all is distinct


class TestDigests:
    def test_text_digest_stable(self):
        assert text_digest("abc") == text_digest("abc")
        assert text_digest("abc") != text_digest("abd")

    def test_program_digests(self):
        service = CompilerService(ArtifactStore())
        program = service.compile_program(SRC)
        assert program.digest == text_digest(program.source)
        assert program.hardware_digest == text_digest(program.hardware_text)
        assert program.digest != program.hardware_digest
