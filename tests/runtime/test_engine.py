"""Engine tests: software/hardware parity through the ABI."""

import pytest

from repro.core import compile_program
from repro.fabric import DE10
from repro.interp import TaskHost, VirtualFS
from repro.runtime import DirectBoardBackend, SoftwareEngine, HardwareEngine, TrapServicer

COUNTER = """
module counter(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""

CHATTY = """
module chatty(input wire clock);
  reg [31:0] n = 0;
  always @(posedge clock) begin
    $display("n=%0d", n);
    n <= n + 1;
  end
endmodule
"""


def hardware_engine(source):
    program = compile_program(source)
    backend = DirectBoardBackend(DE10)
    placement = backend.place(program)
    host = TaskHost()
    channel = backend.channel(placement.engine_id)
    servicer = TrapServicer(host, program.env)
    return HardwareEngine(program, host, channel, placement.clock_hz, servicer)


class TestSoftwareEngine:
    def test_run_tick_advances(self):
        program = compile_program(COUNTER)
        engine = SoftwareEngine(program, TaskHost())
        for _ in range(3):
            stats = engine.run_tick("clock")
            assert stats.seconds > 0
        assert engine.get("n") == 3

    def test_set_get(self):
        program = compile_program(COUNTER)
        engine = SoftwareEngine(program, TaskHost())
        engine.set("n", 10)
        assert engine.get("n") == 10

    def test_snapshot_restore(self):
        program = compile_program(COUNTER)
        engine = SoftwareEngine(program, TaskHost())
        engine.run_tick("clock")
        snap = engine.snapshot()
        other = SoftwareEngine(program, TaskHost())
        other.restore(snap)
        assert other.get("n") == 1


class TestHardwareEngine:
    def test_run_tick(self):
        engine = hardware_engine(COUNTER)
        for _ in range(3):
            stats = engine.run_tick("clock")
            assert stats.native_cycles > 0
        assert engine.get("n") == 3

    def test_run_batch_counts_ticks(self):
        engine = hardware_engine(COUNTER)
        stats = engine.run_batch("clock", 20)
        assert stats.ticks == 20
        assert engine.get("n") == 20
        # batch cost: 3 cycles/tick exactly for a trap-free design
        assert stats.native_cycles == 60

    def test_traps_serviced_in_tick(self):
        engine = hardware_engine(CHATTY)
        stats = engine.run_tick("clock")
        assert stats.traps == 1
        assert engine.host.display_log == ["n=0"]

    def test_traps_serviced_in_batch(self):
        engine = hardware_engine(CHATTY)
        stats = engine.run_batch("clock", 5)
        assert stats.ticks == 5
        assert engine.host.display_log == [f"n={i}" for i in range(5)]
        assert stats.trap_seconds > 0

    def test_snapshot_restore_via_abi(self):
        engine = hardware_engine(COUNTER)
        engine.run_batch("clock", 4)
        snap = engine.snapshot()
        other = hardware_engine(COUNTER)
        other.restore(snap)
        assert other.get("n") == 4

    def test_partial_snapshot(self):
        engine = hardware_engine(COUNTER)
        engine.run_batch("clock", 2)
        snap = engine.snapshot(["n"])
        # The transform's __-prefixed bookkeeping (control state, NBA
        # shadow queues) always rides along with a narrowed capture set
        # so mid-schedule checkpoints replay identically.
        assert "n" in snap
        assert all(name == "n" or name.startswith("__") for name in snap)


class TestParity:
    def test_sw_and_hw_agree(self):
        program = compile_program(COUNTER)
        sw = SoftwareEngine(program, TaskHost())
        hw = hardware_engine(COUNTER)
        for _ in range(7):
            sw.run_tick("clock")
            hw.run_tick("clock")
        assert sw.get("n") == hw.get("n") == 7

    def test_display_streams_agree(self):
        program = compile_program(CHATTY)
        sw = SoftwareEngine(program, TaskHost())
        hw = hardware_engine(CHATTY)
        for _ in range(4):
            sw.run_tick("clock")
            hw.run_tick("clock")
        assert sw.host.display_log == hw.host.display_log
