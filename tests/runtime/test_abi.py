"""ABI channel accounting tests."""

import pytest

from repro.runtime.abi import (
    AbiChannel, Cont, Evaluate, Get, RunTicks, Set, Snapshot,
)


class Recorder:
    def __init__(self):
        self.seen = []

    def handle(self, engine_id, message):
        self.seen.append((engine_id, message))
        return len(self.seen)


class TestChannel:
    def test_messages_forwarded_with_engine_id(self):
        target = Recorder()
        channel = AbiChannel(target, 7, 1e-6)
        channel.send(Get("x"))
        assert target.seen == [(7, Get("x"))]

    def test_static_latency_accumulates(self):
        channel = AbiChannel(Recorder(), 1, 2e-6)
        for _ in range(5):
            channel.send(Set("x", 1))
        assert channel.stats.seconds == pytest.approx(1e-5)
        assert channel.stats.messages == 5
        assert channel.stats.sets == 5

    def test_dynamic_latency_callable(self):
        latencies = iter([1e-6, 5e-6, 9e-6])
        channel = AbiChannel(Recorder(), 1, lambda: next(latencies))
        channel.send(Get("a"))
        channel.send(Get("b"))
        assert channel.stats.seconds == pytest.approx(6e-6)

    def test_counters_by_kind(self):
        channel = AbiChannel(Recorder(), 1, 0.0)
        channel.send(Get("a"))
        channel.send(Set("a", 1))
        channel.send(Evaluate())
        channel.send(Cont())
        channel.send(Snapshot())
        assert channel.stats.gets == 1
        assert channel.stats.sets == 1
        assert channel.stats.evaluates == 2

    def test_runticks_message_carries_budget(self):
        target = Recorder()
        channel = AbiChannel(target, 1, 0.0)
        channel.send(RunTicks("clock", 64))
        assert target.seen[0][1] == RunTicks("clock", 64)
