"""Runtime instance tests: JIT transitions, suspend/resume, $save."""

import struct

import pytest

from repro.core import compile_program
from repro.fabric import DE10, F1
from repro.interp import VirtualFS
from repro.runtime import DirectBoardBackend, Runtime, RuntimeError_

COUNTER = """
module counter(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""

SAVER = """
module saver(input wire clock);
  reg [31:0] n = 0;
  always @(posedge clock) begin
    n <= n + 1;
    if (n == 4) $save;
  end
endmodule
"""


class TestLifecycle:
    def test_starts_in_software(self):
        runtime = Runtime(COUNTER)
        assert runtime.mode == "software"
        runtime.tick(3)
        assert runtime.engine.get("n") == 3

    def test_transition_preserves_state(self):
        runtime = Runtime(COUNTER)
        runtime.tick(5)
        runtime.attach(DirectBoardBackend(DE10))
        runtime._hw_ready_at = runtime.sim_time
        runtime.tick(1)
        assert runtime.mode == "hardware"
        assert runtime.engine.get("n") == 6

    def test_compile_latency_gates_transition(self):
        runtime = Runtime(COUNTER)
        # A cold compile is the premise: give the backend a private
        # cache so a process-wide store (REPRO_COMPILER_CACHE=1)
        # cannot have pre-warmed this design's bitstream.
        from repro.fabric import CompilationCache

        placement = runtime.attach(
            DirectBoardBackend(DE10, cache=CompilationCache())
        )
        assert placement.compile_seconds > 0
        runtime.tick(3)
        # Simulated time is far below the compile latency: still software.
        assert runtime.mode == "software"

    def test_cache_hit_makes_transition_fast(self):
        backend = DirectBoardBackend(DE10)
        first = Runtime(COUNTER)
        first.attach(backend)
        second = Runtime(COUNTER)
        placement = second.attach(backend)
        assert placement.cache_hit
        assert placement.compile_seconds == 0.0

    def test_transition_back_to_software(self):
        runtime = Runtime(COUNTER)
        runtime.attach(DirectBoardBackend(DE10))
        runtime._hw_ready_at = runtime.sim_time
        runtime.tick(4)
        assert runtime.mode == "hardware"
        runtime.transition_to_software()
        assert runtime.mode == "software"
        runtime._hw_ready_at = None
        runtime.tick(2)
        assert runtime.engine.get("n") == 6

    def test_batched_ticks_on_hardware(self):
        runtime = Runtime(COUNTER)
        runtime.attach(DirectBoardBackend(DE10))
        runtime._hw_ready_at = runtime.sim_time
        runtime.tick(64)
        assert runtime.engine.get("n") == 64
        assert runtime.ticks == 64


class TestSuspendResume:
    def test_context_roundtrip_software(self):
        runtime = Runtime(COUNTER)
        runtime.tick(5)
        context = runtime.save_context()
        other = Runtime(COUNTER)
        other.restore_context(context)
        assert other.engine.get("n") == 5
        assert other.ticks == 5

    def test_context_roundtrip_cross_device(self):
        src_rt = Runtime(COUNTER)
        src_rt.attach(DirectBoardBackend(DE10))
        src_rt._hw_ready_at = src_rt.sim_time
        src_rt.tick(8)
        context = src_rt.save_context()

        dst_rt = Runtime(COUNTER)
        dst_rt.attach(DirectBoardBackend(F1))
        dst_rt._hw_ready_at = dst_rt.sim_time
        dst_rt.tick(1)
        dst_rt.restore_context(context)
        dst_rt.tick(2)
        assert dst_rt.engine.get("n") == 10

    def test_save_task_captures_context(self):
        runtime = Runtime(SAVER)
        runtime.tick(8)
        assert runtime.saved_context is not None
        # Captured between ticks, after the tick where n == 4 ran.
        assert runtime.saved_context.state["n"] == 5

    def test_restart_without_context_raises(self):
        runtime = Runtime("""
            module m(input wire clock);
              always @(posedge clock) $restart;
            endmodule
        """)
        with pytest.raises(RuntimeError_):
            runtime.tick(1)

    def test_finished_cleared_on_restore(self):
        finisher = """
            module m(input wire clock);
              reg [31:0] n = 0;
              always @(posedge clock) begin
                n <= n + 1;
                if (n == 2) $finish;
              end
            endmodule
        """
        runtime = Runtime(finisher)
        runtime.tick(10)
        assert runtime.finished
        fresh = Runtime(finisher)
        fresh.tick(1)
        context = fresh.save_context()
        runtime.restore_context(context)
        assert not runtime.finished


class TestTelemetry:
    def test_events_logged(self):
        runtime = Runtime(COUNTER)
        runtime.attach(DirectBoardBackend(DE10))
        runtime._hw_ready_at = runtime.sim_time
        runtime.tick(1)
        tags = [e.tag for e in runtime.telemetry]
        assert "compile_requested" in tags
        assert "to_hardware" in tags

    def test_measure_rate_positive(self):
        runtime = Runtime(COUNTER)
        assert runtime.measure_rate(4) > 0

    def test_sim_time_monotone(self):
        runtime = Runtime(COUNTER)
        times = []
        for _ in range(5):
            runtime.tick(1)
            times.append(runtime.sim_time)
        assert times == sorted(times)
        assert times[0] > 0


class TestQuietBoot:
    BOOTED = """
        module m(input wire clock);
          reg [7:0] n = 0;
          initial $display("booting");
          always @(posedge clock) n <= n + 1;
        endmodule
    """

    def test_normal_boot_replays_initial_output(self):
        runtime = Runtime(self.BOOTED)
        assert runtime.host.display_log == ["booting"]

    def test_quiet_boot_suppresses_initial_output_but_keeps_state(self):
        runtime = Runtime(self.BOOTED, quiet_boot=True)
        assert runtime.host.display_log == []
        runtime.tick(3)
        assert runtime.engine.get("n") == 3  # execution is unaffected

    def test_resume_on_quiet_destination_does_not_duplicate_boot(self):
        from repro.hypervisor.migration import resume, suspend

        source = Runtime(self.BOOTED)
        source.tick(5)
        context = suspend(source)
        destination = Runtime(self.BOOTED, quiet_boot=True)
        resume(destination, context)
        destination.tick(2)
        assert destination.host.display_log == []
        assert destination.engine.get("n") == 7

    def test_evacuation_does_not_duplicate_boot(self):
        runtime = Runtime(self.BOOTED)
        runtime.attach(DirectBoardBackend(DE10))
        runtime._hw_ready_at = runtime.sim_time
        runtime.tick(4)
        assert runtime.mode == "hardware"
        runtime.transition_to_software()
        runtime.tick(2)
        assert runtime.host.display_log == ["booting"]
        assert runtime.engine.get("n") == 6
