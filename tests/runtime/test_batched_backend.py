"""Batched backend tests: vector lanes vs the scalar backends.

Covers the differential contract (bit-for-bit state, ``$display``
ordering and per-lane ``$finish`` against interp/compiled), the
cohort lane lifecycle (join/leave/snapshot and the
extract → suspend → resume → rejoin round trip), the NumPy-optional
degradation paths, and the supervisor's cohort scheduling.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.compiler.service import CompilerService
from repro.core import compile_program
from repro.fabric.device import F1
from repro.hypervisor import Hypervisor, Supervisor
from repro.hypervisor.migration import resume, suspend
from repro.interp import Simulator, TaskHost, VirtualFS
from repro.interp.compile import CompiledSimulator
from repro.interp.compile import batch as batch_mod
from repro.interp.compile.batch import (
    BatchedCohort, BatchedSimulator, UnsupportedBackend, batch_code_for,
    batched_simulator,
)
from repro.runtime import Runtime, SoftwareEngine
from repro.runtime.cohort import CohortEngine, CohortError, CohortLaneEngine
from repro.verilog import flatten, parse

#: Exercises memories, case, loops, signed compares, dynamic range
#: selects, masked if-divergence, $display ordering and $finish.
KITCHEN = """
module kitchen(clock);
  input wire clock;
  reg [15:0] n;
  reg signed [7:0] s;
  reg [31:0] word;
  reg [7:0] mem [0:15];
  reg [3:0] sel;
  integer i;
  wire [15:0] doubled;
  assign doubled = n + n;
  initial begin
    n = 0; s = -5; word = 32'hA5A5A5A5; sel = 0;
    for (i = 0; i < 16; i = i + 1) mem[i] = i * 3;
  end
  always @(posedge clock) begin
    n <= n + 1;
    s <= s + 1;
    sel <= n[3:0];
    word[n[2:0]*4 +: 4] <= n[3:0];
    for (i = 0; i < 4; i = i + 1)
      mem[(n + i) & 15] <= mem[(n + i) & 15] + 1;
    case (sel)
      4'd0: $display("zero n=%0d d=%0d", n, doubled);
      4'd5: $display("five s=%0d", s);
      default: if (s > 0) $display("pos %0d", s);
    endcase
    if (n == FINISH_AT)
      $finish(3);
  end
endmodule
"""


def kitchen(finish_at=40):
    return KITCHEN.replace("FINISH_AT", str(finish_at))


def run_backend(source, backend, ticks, code=None):
    flat = flatten(parse(source), "kitchen")
    host = TaskHost(VirtualFS())
    sim = Simulator(flat, host, backend=backend, code=code)
    sim.tick(cycles=ticks)
    return sim, host


def lane_state(sim):
    return sim.store.snapshot()


class TestDifferential:
    @pytest.mark.parametrize("finish_at,ticks", [(40, 24), (10, 24)])
    def test_state_display_finish_parity(self, finish_at, ticks):
        src = kitchen(finish_at)
        ref_sim, ref_host = run_backend(src, "interp", ticks)
        for backend in ("compiled", "batched"):
            sim, host = run_backend(src, backend, ticks)
            assert lane_state(sim) == lane_state(ref_sim), backend
            assert host.display_log == ref_host.display_log, backend
            assert host.finished == ref_host.finished, backend
            assert host.finish_code == ref_host.finish_code, backend
            assert sim.time == ref_sim.time, backend

    def test_per_lane_finish_at_different_ticks(self):
        """Lanes $finish at different ticks; each must match its own
        scalar run, and dead lanes must stop advancing."""
        flat = flatten(parse(kitchen(40)), "kitchen")
        code = CompiledSimulator(flat).code
        cohort = BatchedCohort(batch_code_for(code))
        finishes = [5, 12, 40, 40]
        hosts = []
        for at in finishes:
            host = TaskHost(VirtualFS())
            lane = cohort.join(host)
            # stagger the finish point per lane through its own state
            cohort.set_value("n", 0, lane=lane)
            hosts.append(host)
        # lanes can't vary the module text, so vary via state: push two
        # lanes close to their $finish trigger (n reads its pre-tick
        # value, so starting at 41-f makes n==40 on tick f exactly)
        cohort.set_value("n", 41 - finishes[0], lane=0)
        cohort.set_value("n", 41 - finishes[1], lane=1)
        cohort.tick(20)
        assert hosts[0].finished and hosts[0].finish_code == 3
        assert hosts[1].finished and hosts[1].finish_code == 3
        assert not hosts[2].finished and not hosts[3].finished
        # dead lanes froze their $time at the finish tick
        assert int(cohort.times[0]) == finishes[0]
        assert int(cohort.times[1]) == finishes[1]
        assert int(cohort.times[2]) == 20
        # live lanes keep matching a scalar run from the same state
        scalar = Simulator(flat, TaskHost(VirtualFS()), backend="compiled",
                           code=code)
        scalar.tick(cycles=20)
        assert cohort.snapshot_lane(2) == scalar.store.snapshot()

    def test_display_interleaving_multiple_lanes(self):
        """Each lane's display stream equals its scalar twin's."""
        flat = flatten(parse(kitchen(40)), "kitchen")
        code = CompiledSimulator(flat).code
        cohort = BatchedCohort(batch_code_for(code))
        hosts = [TaskHost(VirtualFS()) for _ in range(3)]
        for host in hosts:
            cohort.join(host)
        cohort.tick(18)
        ref_host = TaskHost(VirtualFS())
        ref = Simulator(flat, ref_host, backend="interp")
        ref.tick(cycles=18)
        for host in hosts:
            assert host.display_log == ref_host.display_log


class TestFacade:
    def test_save_restore_roundtrip(self):
        src = kitchen(100)
        sim, host = run_backend(src, "batched", 7)
        saved = sim.save_state()
        sim.tick(cycles=5)
        after_12 = lane_state(sim)
        sim.restore_state(saved)
        assert lane_state(sim) == saved["store"]
        sim.tick(cycles=5)
        assert lane_state(sim) == after_12
        assert sim.time == 12

    def test_unlicensed_module_falls_back_to_compiled(self):
        # Pure sequential modules (no comb layer) are outside the
        # static plan → the factory silently yields the scalar sim.
        src = """
        module seqonly(clock);
          input wire clock;
          reg [7:0] n;
          initial n = 0;
          always @(posedge clock) n <= n + 1;
        endmodule
        """
        flat = flatten(parse(src), "seqonly")
        sim = batched_simulator(flat, TaskHost(VirtualFS()), None, None)
        assert isinstance(sim, CompiledSimulator)
        assert not isinstance(sim, BatchedSimulator)

    def test_unsupported_without_numpy(self, monkeypatch):
        flat = flatten(parse(kitchen(40)), "kitchen")
        code = CompiledSimulator(flat).code
        monkeypatch.setattr(batch_mod, "np", None)
        monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
        with pytest.raises(UnsupportedBackend):
            batch_code_for(code)
        with pytest.raises(UnsupportedBackend):
            batched_simulator(flat, TaskHost(VirtualFS()), None, code)

    def test_hypervisor_degrades_to_compiled_without_numpy(self, monkeypatch):
        monkeypatch.setattr(
            "repro.interp.compile.batch.HAVE_NUMPY", False)
        hv = Hypervisor(F1, sim_backend="batched")
        assert hv.sim_backend == "compiled"


class TestCohortLifecycle:
    def _cohort_engine(self, src=None):
        service = CompilerService()
        program = service.compile_program(src or kitchen(60))
        return CohortEngine(program, compiler=service), program, service

    def test_extract_suspend_resume_rejoin(self):
        """Lane → scalar engine → suspend → resume → back to a lane,
        landing bit-identical with a never-vectorized scalar run."""
        engine, program, service = self._cohort_engine()
        runtime = Runtime(program, name="t0", compiler=service)
        twin = Runtime(program, name="twin", compiler=service)
        runtime.tick(5)
        twin.tick(5)
        # absorb into a cohort
        member = engine.admit(runtime.host, state=runtime.engine.snapshot())
        member.time = runtime.engine.sim.time
        runtime.engine = member
        runtime.tick(6)
        twin.tick(6)
        # extract back to scalar
        state = engine.detach(member)
        scalar = SoftwareEngine(program, runtime.host, compiler=service,
                                quiet_init=True)
        scalar.sim.restore_state({
            "store": state,
            "vfs": runtime.host.vfs.snapshot(),
            "time": 11,
        })
        scalar.sim.step()
        runtime.engine = scalar
        # suspend/resume through the migration path; the context
        # carries logical ticks but not $time, so re-anchor it the way
        # the hypervisor's full-state restore does
        context = suspend(runtime)
        fresh = Runtime(program, name="t1", compiler=service,
                        quiet_boot=True)
        resume(fresh, context)
        fresh.engine.sim.time = scalar.sim.time
        fresh.tick(4)
        twin.tick(4)
        # rejoin a (new) cohort and finish out
        engine2 = CohortEngine(program, compiler=service)
        member2 = engine2.admit(fresh.host,
                                state=fresh.engine.snapshot())
        member2.time = fresh.engine.sim.time
        fresh.engine = member2
        fresh.tick(3)
        twin.tick(3)
        assert fresh.engine.snapshot() == twin.engine.snapshot()
        assert fresh.host.display_log[-3:] == twin.host.display_log[-3:]
        assert fresh.engine.time == twin.engine.sim.time

    def test_detach_shrinks_lanes(self):
        engine, program, service = self._cohort_engine()
        members = [engine.admit(TaskHost(VirtualFS())) for _ in range(3)]
        assert engine.size == 3
        engine.detach(members[1])
        assert engine.size == 2
        assert members[0].lane == 0 and members[2].lane == 1
        with pytest.raises(CohortError):
            members[1].get("n")

    def test_snapshot_blocked_mid_bank(self):
        engine, program, service = self._cohort_engine()
        a = engine.admit(TaskHost(VirtualFS()))
        b = engine.admit(TaskHost(VirtualFS()))
        a.run_tick("clock")  # banks a tick for b
        assert b.banked == 1
        with pytest.raises(CohortError):
            b.snapshot()
        with pytest.raises(CohortError):
            engine.detach(b)
        b.run_tick("clock")  # consume the bank
        assert b.banked == 0
        b.snapshot()


class TestSupervisorCohorts:
    def _mk(self, n, ticks_each):
        sup = Supervisor([Hypervisor(F1)], checkpoint_every=8)
        for i in range(n):
            sup.admit(f"t{i}", kitchen(25), software=True)
        for i, name in enumerate(list(sup.tenants)):
            sup.run(name, i * ticks_each)
        return sup

    def test_run_all_matches_scalar_runs(self):
        a = self._mk(4, 2)
        b = self._mk(4, 2)
        a.run_all(30)
        for name in list(b.tenants):
            b.run(name, 30)
        for i in range(4):
            ra = a.tenants[f"t{i}"].runtime
            rb = b.tenants[f"t{i}"].runtime
            assert not isinstance(ra.engine, CohortLaneEngine)
            assert ra.engine.snapshot() == rb.engine.snapshot()
            assert ra.host.display_log == rb.host.display_log
            assert (ra.finished, ra.host.finish_code) == \
                (rb.finished, rb.host.finish_code)
            assert ra.ticks == rb.ticks
            assert ra.engine.sim.time == rb.engine.sim.time

    def test_stats_telemetry(self):
        sup = self._mk(3, 0)
        formed = sup.form_cohorts()
        assert formed == 1
        stats = sup.stats()
        assert stats["cohorts"]["active"] == 1
        assert stats["cohorts"]["formed"] == 1
        assert stats["cohorts"]["sizes"] == [3]
        sup.run_all(10, form=False)
        sup.dissolve_cohorts()
        stats = sup.stats()
        assert stats["cohorts"]["active"] == 0
        assert stats["cohorts"]["vector_ticks"] >= 10
        hv_stats = sup.hypervisors[0].stats()
        assert "batch_artifacts" in hv_stats
        for key in ("entries", "hits", "misses"):
            assert key in hv_stats["batch_artifacts"]
