"""Trap servicer tests against a real board-backed channel."""

import struct

import pytest

from repro.core import compile_program
from repro.fabric import DE10
from repro.interp import TaskHost, VirtualFS
from repro.runtime import DirectBoardBackend, Runtime, TrapError, TrapServicer
from repro.runtime.abi import Cont, Evaluate, Set


def trap_fixture(source, vfs=None):
    """Place a program, drive to its first trap, return plumbing."""
    program = compile_program(source)
    backend = DirectBoardBackend(DE10)
    placement = backend.place(program)
    host = TaskHost(vfs=vfs or VirtualFS())
    channel = backend.channel(placement.engine_id)
    servicer = TrapServicer(host, program.env)
    # Apply software-side inits ($fopen results) like the JIT handoff.
    from repro.runtime import SoftwareEngine

    sw = SoftwareEngine(program, host)
    state = sw.snapshot()
    from repro.runtime.abi import Restore

    channel.send(Restore(state))
    channel.send(Set("clock", 1))
    reply = channel.send(Evaluate())
    return program, host, channel, servicer, reply


class TestQueries:
    def test_feof_query_written_back(self):
        vfs = VirtualFS()
        vfs.add_file("f.bin", struct.pack(">I", 7))
        program, host, channel, servicer, reply = trap_fixture("""
            module m(input wire clock);
              integer fd = $fopen("f.bin");
              reg [31:0] r = 0;
              always @(posedge clock) begin
                $fread(fd, r);
                if ($feof(fd)) $finish;
                else r <= r;
              end
            endmodule
        """, vfs)
        # First trap: the $fread.
        site = program.transform.tasks[reply.task_id]
        assert site.name == "$fread"
        servicer.service(channel, site)
        reply = channel.send(Cont())
        # Second trap: the hoisted $feof query.
        site = program.transform.tasks[reply.task_id]
        assert site.kind == "query" and site.name == "$feof"
        servicer.service(channel, site)
        assert servicer.serviced == 2

    def test_random_query(self):
        program, host, channel, servicer, reply = trap_fixture("""
            module m(input wire clock);
              reg [31:0] x = 0;
              always @(posedge clock) x <= $random;
            endmodule
        """)
        site = program.transform.tasks[reply.task_id]
        assert site.name == "$random"
        servicer.service(channel, site)
        channel.send(Cont())
        # The value landed in the query register and latched into x via
        # the update state; it must match the host's first random draw.
        expected = TaskHost(seed=1).random()
        from repro.runtime.abi import Get

        assert channel.send(Get("x")) == expected

    def test_unsupported_query_raises(self):
        from repro.core.machinify import TaskSite

        servicer = TrapServicer(TaskHost(), None)
        with pytest.raises(TrapError):
            servicer._service_query(None, TaskSite(1, "query", "$bogus", ()))


class TestTasks:
    def test_display_formats_from_hardware_state(self):
        program, host, channel, servicer, reply = trap_fixture("""
            module m(input wire clock);
              reg [31:0] n = 0;
              always @(posedge clock) begin
                $display("value %0d!", n * 2 + 1);
                n <= n + 1;
              end
            endmodule
        """)
        site = program.transform.tasks[reply.task_id]
        servicer.service(channel, site)
        assert host.display_log == ["value 1!"]

    def test_finish_marks_host(self):
        program, host, channel, servicer, reply = trap_fixture("""
            module m(input wire clock);
              always @(posedge clock) $finish(3);
            endmodule
        """)
        servicer.service(channel, program.transform.tasks[reply.task_id])
        assert host.finished and host.finish_code == 3

    def test_save_requests_runtime_hook(self):
        program, host, channel, servicer, reply = trap_fixture("""
            module m(input wire clock);
              always @(posedge clock) $save;
            endmodule
        """)
        servicer.service(channel, program.transform.tasks[reply.task_id])
        assert host.save_requested

    def test_fwrite_reaches_vfs(self):
        vfs = VirtualFS()
        program, host, channel, servicer, reply = trap_fixture("""
            module m(input wire clock);
              integer fd = $fopen("log.txt", "w");
              reg [7:0] n = 0;
              always @(posedge clock) begin
                $fwrite(fd, "%0d,", n);
                n <= n + 1;
              end
            endmodule
        """, vfs)
        servicer.service(channel, program.transform.tasks[reply.task_id])
        handle = list(host.vfs.open_files.values())[0]
        assert bytes(handle.written) == b"0,"
