"""JIT policy tests: adaptive refinement and transition costs."""

import pytest

from repro.runtime.jit import AdaptiveRefinement, TransitionCosts


class TestAdaptiveRefinement:
    def test_grows_multiplicatively(self):
        ref = AdaptiveRefinement()
        start = ref.quantum
        ref.on_smooth()
        ref.on_smooth()
        assert ref.quantum == start * 4

    def test_caps_at_max(self):
        ref = AdaptiveRefinement()
        for _ in range(30):
            ref.on_smooth()
        assert ref.quantum == ref.max_quantum
        assert ref.at_peak

    def test_backs_off_under_contention(self):
        ref = AdaptiveRefinement()
        for _ in range(30):
            ref.on_smooth()
        ref.on_contention()
        assert ref.quantum == ref.max_quantum // 2
        assert not ref.at_peak

    def test_floors_at_min(self):
        ref = AdaptiveRefinement()
        for _ in range(30):
            ref.on_contention()
        assert ref.quantum == ref.min_quantum

    def test_reset(self):
        ref = AdaptiveRefinement()
        ref.on_smooth()
        ref.reset()
        assert ref.quantum == ref.min_quantum

    def test_recovery_is_several_doublings(self):
        """The Figure 11 recovery tail: from min to max takes log2 steps."""
        import math

        ref = AdaptiveRefinement()
        steps = 0
        while not ref.at_peak:
            ref.on_smooth()
            steps += 1
        assert steps == math.ceil(math.log2(ref.max_quantum / ref.min_quantum))


class TestTransitionCosts:
    def test_save_scales_with_state(self):
        costs = TransitionCosts()
        assert costs.save_seconds(10_000) > costs.save_seconds(100)

    def test_restore_includes_reconfiguration(self):
        costs = TransitionCosts()
        assert (costs.restore_seconds(1000, reconfig_seconds=4.0)
                - costs.restore_seconds(1000, reconfig_seconds=0.0)) == pytest.approx(4.0)

    def test_fixed_overhead_floor(self):
        costs = TransitionCosts()
        assert costs.save_seconds(0) == pytest.approx(costs.runtime_overhead_s)

    def test_mips32_dips_deeper_than_bitcoin(self):
        """The Figure 10 observation, from the model's own parameters."""
        costs = TransitionCosts()
        mips32_bits, bitcoin_bits = 11552, 5473
        assert (costs.save_seconds(mips32_bits)
                > costs.save_seconds(bitcoin_bits) + 1.0)
