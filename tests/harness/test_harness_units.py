"""Harness internals: strip_tasks, profiles, result rendering."""

import pytest

from repro.core import compile_program
from repro.fabric import DE10
from repro.harness.common import (
    ExperimentResult, bench_program, bench_source_kwargs, bench_vfs,
)
from repro.harness.grid import CONDITIONS, compile_cell, strip_tasks
from repro.verilog import ast, parse_module
from repro.verilog.ast_nodes import walk_stmt


class TestStripTasks:
    MOD = parse_module("""
        module m(input wire clock);
          integer fd = $fopen("f");
          reg [31:0] r = 0;
          always @(posedge clock) begin
            $display(r);
            if ($feof(fd)) $finish;
            else r <= r + $random;
          end
          initial $display("boot");
        endmodule
    """)

    def stripped(self):
        return strip_tasks(self.MOD)

    def test_no_systasks_remain(self):
        for item in self.stripped().items:
            if isinstance(item, (ast.Always, ast.Initial)):
                assert not any(
                    isinstance(s, ast.SysTask) for s in walk_stmt(item.stmt)
                )

    def test_no_syscalls_remain(self):
        from repro.core.machinify import _has_syscall

        for item in self.stripped().items:
            if isinstance(item, ast.Decl) and item.init is not None:
                assert not _has_syscall(item.init)

    def test_stripped_module_compiles_trap_free(self):
        program = compile_program(self.stripped())
        assert not program.transform.tasks

    def test_structure_preserved(self):
        stripped = self.stripped()
        always = [i for i in stripped.items if isinstance(i, ast.Always)]
        assert len(always) == 1
        # The register assignment survives (with $random zeroed).
        assigns = [s for s in walk_stmt(always[0].stmt)
                   if isinstance(s, ast.Assign)]
        assert assigns


class TestGrid:
    def test_all_conditions_compile(self):
        for condition in CONDITIONS:
            cell = compile_cell("regex", condition)
            assert cell.estimate.luts > 0
            assert cell.achieved_hz > 0

    def test_synergy_q_uses_quiescent_program(self):
        plain = compile_cell("bitcoin", "synergy")
        quiescent = compile_cell("bitcoin", "synergy-q")
        assert quiescent.estimate.ffs < plain.estimate.ffs

    def test_unknown_condition(self):
        with pytest.raises(ValueError):
            compile_cell("regex", "wat")


class TestCommon:
    def test_bench_program_memoized(self):
        assert bench_program("regex") is bench_program("regex")

    def test_bench_program_kwargs_not_memoized(self):
        a = bench_program("bitcoin", target=1)
        b = bench_program("bitcoin", target=2)
        assert a is not b

    def test_bench_vfs_contents(self):
        assert "regex_input.txt" in bench_vfs("regex").files
        assert "nw_input.bin" in bench_vfs("nw").files
        assert "adpcm_input.bin" in bench_vfs("adpcm").files
        assert not bench_vfs("bitcoin").files

    def test_source_kwargs_keep_batch_benches_running(self):
        assert bench_source_kwargs("bitcoin")["target"] == 1
        assert bench_source_kwargs("df")["iters"] > 1e6
        assert bench_source_kwargs("regex") == {}

    def test_result_rendering(self):
        result = ExperimentResult("X", "title")
        result.rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        result.notes = ["hello"]
        text = result.render()
        assert "== X: title ==" in text
        assert "note: hello" in text
        assert "10" in text

    def test_empty_result_renders(self):
        assert "Y" in ExperimentResult("Y", "t").render()


class TestCli:
    def test_cli_bench_listing(self, capsys):
        from repro.__main__ import main

        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "bitcoin" in out and "regex" in out

    def test_cli_compile(self, tmp_path, capsys):
        src = tmp_path / "m.v"
        src.write_text("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """)
        from repro.__main__ import main

        assert main(["compile", str(src)]) == 0
        out = capsys.readouterr().out
        assert "module m__synergy(" in out
        assert "__state" in out

    def test_cli_run(self, tmp_path, capsys):
        src = tmp_path / "m.v"
        src.write_text("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) begin
                n <= n + 1;
                if (n == 5) $finish;
              end
            endmodule
        """)
        from repro.__main__ import main

        assert main(["run", str(src), "--ticks", "20"]) == 0

    def test_cli_unknown_experiment(self):
        from repro.__main__ import main

        assert main(["experiments", "fig99"]) == 2
