"""Device model tests."""

import pytest

from repro.fabric import DE10, F1, Device, device_by_name


class TestBuiltins:
    def test_lookup(self):
        from repro.fabric import STRATIX10

        assert device_by_name("de10") is DE10
        assert device_by_name("f1") is F1
        assert device_by_name("stratix10") is STRATIX10

    def test_stratix10_is_intel_class(self):
        """§5.1: same Avalon interface family as the DE10."""
        from repro.fabric import STRATIX10

        assert STRATIX10.host_interface == DE10.host_interface
        assert STRATIX10.max_clock_hz > F1.max_clock_hz

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            device_by_name("vu19p")

    def test_paper_ratios(self):
        """§5.2: each F1 has 10x the LUTs and runs 5x faster."""
        assert F1.luts == 10 * DE10.luts
        assert F1.max_clock_hz == 5 * DE10.max_clock_hz

    def test_f1_reconfigures_slower(self):
        """§6.1: restart dips are wider on F1."""
        assert F1.reconfig_seconds > DE10.reconfig_seconds


class TestTiming:
    def test_achievable_caps_at_max(self):
        assert F1.achievable_hz(1) == F1.max_clock_hz

    def test_achievable_decreases_with_depth(self):
        assert F1.achievable_hz(30) < F1.achievable_hz(10)

    def test_closed_picks_a_step(self):
        assert F1.closed_hz(12) in F1.clock_steps_hz

    def test_closed_monotone(self):
        clocks = [F1.closed_hz(levels) for levels in (2, 10, 20, 40)]
        assert clocks == sorted(clocks, reverse=True)

    def test_close_margin_pushes_boundary_builds(self):
        # A build just below a step closes at that step (§5.2's
        # iterative effort), not one below.
        raw_just_under = F1.clock_steps_hz[0] * 0.97
        levels = int(1e9 / (raw_just_under * F1.lut_delay_ns))
        assert F1.closed_hz(levels) == F1.clock_steps_hz[0]

    def test_floor_step(self):
        assert F1.closed_hz(10_000) == F1.clock_steps_hz[-1]


class TestFits:
    def test_fits(self):
        assert DE10.fits(100_000, 200_000)
        assert not DE10.fits(200_000, 10)
        assert not DE10.fits(10, 10_000_000)
