"""Synthesis estimator tests: the mechanisms behind Figures 13-15."""

import pytest

from repro.fabric.synth import ResourceEstimate, SynthOptions, Synthesizer
from repro.verilog import WidthEnv, parse_module

RAM_MOD = parse_module("""
module ram_user(input wire clock, input wire [7:0] addr);
  reg [31:0] mem [0:255];
  reg [31:0] out;
  always @(posedge clock) out <= mem[addr];
endmodule
""")

DATAPATH_MOD = parse_module("""
module dp(input wire [31:0] a, input wire [31:0] b, output wire [31:0] y);
  assign y = (a * b) + (a >> 3);
endmodule
""")


def estimate(mod, **opts):
    return Synthesizer(SynthOptions(**opts)).estimate(mod, WidthEnv(mod))


class TestMemories:
    def test_preserved_memories_use_bram(self):
        est = estimate(RAM_MOD, preserve_memories=True)
        assert est.bram_bits == 32 * 256
        assert est.ffs < 200

    def test_ram_as_ff_blowup(self):
        est = estimate(RAM_MOD, preserve_memories=False)
        assert est.ffs >= 32 * 256
        assert est.bram_bits == 0

    def test_ram_as_ff_adds_mux_luts(self):
        bram = estimate(RAM_MOD, preserve_memories=True)
        ff = estimate(RAM_MOD, preserve_memories=False)
        assert ff.luts > bram.luts * 2

    def test_uncaptured_memory_stays_bram(self):
        est = estimate(RAM_MOD, preserve_memories=False,
                       captured_names=frozenset(["out"]))
        assert est.bram_bits == 32 * 256

    def test_deep_memory_hurts_timing_more(self):
        est = estimate(RAM_MOD, preserve_memories=False)
        assert est.ram_timing > 0


class TestStateAccess:
    def test_capture_tree_costs_resources(self):
        base = estimate(DATAPATH_MOD)
        capture = estimate(DATAPATH_MOD, state_access_bits=4096)
        assert capture.ffs > base.ffs
        assert capture.luts > base.luts

    def test_more_bits_more_cost(self):
        small = estimate(DATAPATH_MOD, state_access_bits=512)
        big = estimate(DATAPATH_MOD, state_access_bits=8192)
        assert big.ffs > small.ffs


class TestControlStates:
    def test_state_decode_luts(self):
        base = estimate(DATAPATH_MOD)
        ctrl = estimate(DATAPATH_MOD, control_states=24)
        assert ctrl.luts > base.luts

    def test_nested_tasks_deepen_path(self):
        shallow = estimate(DATAPATH_MOD, control_states=18, task_nesting=1)
        deep = estimate(DATAPATH_MOD, control_states=18, task_nesting=4)
        assert deep.logic_levels > shallow.logic_levels


class TestDeterminismAndKnobs:
    def test_estimates_are_deterministic(self):
        a = estimate(RAM_MOD, preserve_memories=False)
        b = estimate(RAM_MOD, preserve_memories=False)
        assert (a.luts, a.ffs, a.logic_levels) == (b.luts, b.ffs, b.logic_levels)

    def test_anti_congestion_shortens_path(self):
        plain = estimate(DATAPATH_MOD, control_states=30, task_nesting=4)
        tuned = estimate(DATAPATH_MOD, control_states=30, task_nesting=4,
                         anti_congestion=True)
        assert tuned.logic_levels < plain.logic_levels

    def test_detail_breakdown_sums_sanely(self):
        est = estimate(RAM_MOD, preserve_memories=False, state_access_bits=1024)
        assert "ram-as-ff" in est.detail
        assert "capture-tree" in est.detail

    def test_bigger_datapath_more_luts(self):
        small = parse_module(
            "module s(input wire [7:0] a, output wire [7:0] y);"
            " assign y = a + 1; endmodule"
        )
        assert estimate(DATAPATH_MOD).luts > estimate(small).luts
