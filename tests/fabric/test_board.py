"""Simulated board tests: the hardware half of the engine ABI."""

import pytest

from repro.core import compile_program
from repro.fabric import DE10, BitstreamCompiler, BoardError, SimulatedBoard, SynthOptions
from repro.verilog import parse_expr

COUNTER = """
module counter(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""

TRAPPER = """
module trapper(input wire clock);
  reg [31:0] n = 0;
  always @(posedge clock) begin
    $display("n=%0d", n);
    n <= n + 1;
  end
endmodule
"""


def board_with(source):
    program = compile_program(source)
    compiler = BitstreamCompiler(DE10, SynthOptions())
    bitstream = compiler.compile(program.transform.module, program.hardware_text)
    board = SimulatedBoard(DE10)
    board.program(bitstream, {1: program})
    return board, program


class TestDataPlane:
    def test_get_set(self):
        board, _ = board_with(COUNTER)
        board.set_var(1, "n", 41)
        assert board.get_var(1, "n") == 41

    def test_read_expr(self):
        board, _ = board_with(COUNTER)
        board.set_var(1, "n", 6)
        assert board.read_expr(1, parse_expr("n * 2")) == 12

    def test_write_lvalue(self):
        board, _ = board_with(COUNTER)
        board.write_lvalue(1, parse_expr("n"), 9)
        assert board.get_var(1, "n") == 9

    def test_snapshot_restore(self):
        board, _ = board_with(COUNTER)
        board.set_var(1, "n", 123)
        snap = board.snapshot(1)
        board.set_var(1, "n", 0)
        board.restore(1, snap)
        assert board.get_var(1, "n") == 123

    def test_unknown_slot(self):
        board, _ = board_with(COUNTER)
        with pytest.raises(BoardError):
            board.get_var(99, "n")


class TestControlPlane:
    def test_evaluate_runs_one_tick(self):
        board, _ = board_with(COUNTER)
        board.set_var(1, "clock", 1)
        outcome = board.evaluate(1)
        assert outcome.status == "done"
        board.set_var(1, "clock", 0)
        board.evaluate(1)
        assert board.get_var(1, "n") == 1

    def test_three_cycles_per_tick(self):
        """§6.4's minimum: toggle, evaluate, latch in separate cycles."""
        board, _ = board_with(COUNTER)
        for _ in range(4):
            board.set_var(1, "clock", 1)
            board.evaluate(1)
            board.set_var(1, "clock", 0)
            board.evaluate(1)
        assert board.slots[1].native_cycles / 4 == 3.0

    def test_trap_and_cont(self):
        board, program = board_with(TRAPPER)
        board.set_var(1, "clock", 1)
        outcome = board.evaluate(1)
        assert outcome.status == "trap"
        site = program.transform.tasks[outcome.task_id]
        assert site.name == "$display"
        after = board.cont(1)
        assert after.status == "done"

    def test_evaluate_with_pending_trap_rejected(self):
        board, _ = board_with(TRAPPER)
        board.set_var(1, "clock", 1)
        board.evaluate(1)
        with pytest.raises(BoardError):
            board.evaluate(1)

    def test_run_ticks_batch(self):
        board, _ = board_with(COUNTER)
        outcome = board.run_ticks(1, "clock", 10)
        assert outcome.status == "done"
        assert outcome.ticks_done == 10
        assert board.get_var(1, "n") == 10

    def test_run_ticks_stops_at_trap(self):
        board, _ = board_with(TRAPPER)
        outcome = board.run_ticks(1, "clock", 10)
        assert outcome.status == "trap"
        assert outcome.ticks_done == 0


class TestReprogramming:
    def test_program_destroys_state(self):
        board, program = board_with(COUNTER)
        board.set_var(1, "n", 77)
        bitstream = board.bitstream
        board.program(bitstream, {1: program})
        assert board.get_var(1, "n") == 0  # power-on value

    def test_reconfiguration_accounted(self):
        board, program = board_with(COUNTER)
        assert board.reconfigurations == 1
        board.program(board.bitstream, {1: program})
        assert board.reconfigurations == 2
        assert board.reconfig_seconds_total == 2 * DE10.reconfig_seconds

    def test_utilization(self):
        board, _ = board_with(COUNTER)
        util = board.utilization()
        assert 0 < util["luts"] < 1
