"""Bitstream compilation and cache tests (§5.1, §7)."""

from repro.core import compile_program
from repro.fabric import (
    DE10, F1, BitstreamCompiler, CompilationCache, SynthOptions, text_digest,
)

SRC = """
module m(input wire clock);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
endmodule
"""


class TestDigest:
    def test_stable(self):
        assert text_digest("abc") == text_digest("abc")

    def test_discriminates(self):
        assert text_digest("abc") != text_digest("abd")


class TestCompiler:
    def test_compile_produces_bitstream(self):
        program = compile_program(SRC)
        bs = BitstreamCompiler(DE10).compile(
            program.transform.module, program.hardware_text
        )
        assert bs.device_name == "de10"
        assert bs.clock_hz in DE10.clock_steps_hz
        assert bs.compile_seconds > 0

    def test_latency_scales_with_size(self):
        compiler = BitstreamCompiler(F1)
        from repro.fabric.synth import ResourceEstimate

        small = compiler.compile_latency(ResourceEstimate(luts=1_000))
        big = compiler.compile_latency(ResourceEstimate(luts=800_000))
        assert big > small

    def test_f1_builds_slower_than_de10(self):
        """Artifact appendix: ~20min Quartus vs ~2h Vivado."""
        from repro.fabric.synth import ResourceEstimate

        est = ResourceEstimate(luts=10_000)
        assert (BitstreamCompiler(F1).compile_latency(est)
                > BitstreamCompiler(DE10).compile_latency(est))

    def test_target_hz_clamps(self):
        program = compile_program(SRC)
        bs = BitstreamCompiler(F1).compile(
            program.transform.module, program.hardware_text, target_hz=125e6
        )
        assert bs.clock_hz <= 125e6


class TestCache:
    def test_miss_then_hit(self):
        program = compile_program(SRC)
        bs = BitstreamCompiler(DE10).compile(
            program.transform.module, program.hardware_text
        )
        cache = CompilationCache()
        assert cache.lookup("de10", "opts", bs.digest) is None
        cache.insert("de10", "opts", bs)
        assert cache.lookup("de10", "opts", bs.digest) is bs
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_keyed_by_device_and_options(self):
        program = compile_program(SRC)
        bs = BitstreamCompiler(DE10).compile(
            program.transform.module, program.hardware_text
        )
        cache = CompilationCache()
        cache.insert("de10", "optsA", bs)
        assert cache.lookup("f1", "optsA", bs.digest) is None
        assert cache.lookup("de10", "optsB", bs.digest) is None

    def test_seconds_saved_accumulates(self):
        program = compile_program(SRC)
        bs = BitstreamCompiler(DE10).compile(
            program.transform.module, program.hardware_text
        )
        cache = CompilationCache()
        cache.insert("de10", "o", bs)
        cache.lookup("de10", "o", bs.digest)
        cache.lookup("de10", "o", bs.digest)
        assert cache.stats.seconds_saved == 2 * bs.compile_seconds

    def test_hit_rate(self):
        cache = CompilationCache()
        assert cache.stats.hit_rate == 0.0
        cache.lookup("de10", "o", "nope")
        assert cache.stats.hit_rate == 0.0

    def test_clear(self):
        cache = CompilationCache()
        cache.lookup("de10", "o", "x")
        cache.clear()
        assert len(cache) == 0 and cache.stats.misses == 0
