"""Fault injection and supervised delivery at the fabric layer."""

from pathlib import Path

import pytest

from repro.core import compile_program
from repro.fabric import (
    DE10,
    AbiTimeoutError,
    BitstreamCompiler,
    BoardDeadError,
    BoardError,
    DeadlineExceededError,
    EvalOutcome,
    FabricError,
    FaultPlan,
    FaultSpecError,
    PersistentFabricError,
    ReprogramError,
    SimulatedBoard,
    SlotHangError,
    SlotLockupError,
    SynthOptions,
    TransientFabricError,
    parse_fault_spec,
)
from repro.fabric.retry import RetryPolicy, retry_call
from repro.runtime.abi import AbiChannel, Get, Message

CORPUS = Path(__file__).resolve().parent.parent / "corpus"

COUNTER = """
module counter(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""


def board_with(source, faults=None):
    program = compile_program(source)
    compiler = BitstreamCompiler(DE10, SynthOptions())
    bitstream = compiler.compile(program.transform.module, program.hardware_text)
    board = SimulatedBoard(DE10, faults=faults)
    board.program(bitstream, {1: program})
    return board, program


class TestSpecParsing:
    def test_rates_and_scheduled(self):
        parsed = parse_fault_spec("lockup:0.25, abi_drop:0.5, board_death@7")
        assert parsed["rates"] == {"lockup": 0.25, "abi_drop": 0.5}
        assert parsed["at"] == {"board_death": {7}}

    def test_empty_spec_is_inactive(self):
        assert not FaultPlan("").active
        assert FaultPlan("hang:0.1").active

    @pytest.mark.parametrize("spec", [
        "bogus:0.1", "lockup", "lockup:nope", "lockup:1.5", "hang@x",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan("lockup:0.3", seed=11)
        b = FaultPlan("lockup:0.3", seed=11)
        assert [a.fire("lockup") for _ in range(50)] == \
               [b.fire("lockup") for _ in range(50)]

    def test_kinds_draw_from_independent_streams(self):
        solo = FaultPlan("lockup:0.3", seed=5)
        mixed = FaultPlan("lockup:0.3,abi_drop:0.5", seed=5)
        for _ in range(50):
            mixed.fire("abi_drop")  # must not perturb the lockup stream
        assert [solo.fire("lockup") for _ in range(50)] == \
               [mixed.fire("lockup") for _ in range(50)]

    def test_scheduled_fault_fires_exactly_once(self):
        plan = FaultPlan("board_death@2", seed=0)
        fires = [plan.fire("board_death") for _ in range(5)]
        assert fires == [False, False, True, False, False]


class TestBoardFaults:
    def test_lockup_raises_before_state_change(self):
        board, _ = board_with(COUNTER, faults=FaultPlan("lockup@0"))
        cycles_before = board.slots[1].native_cycles
        with pytest.raises(SlotLockupError):
            board.evaluate(1)
        # Pre-mutation injection: nothing ran, so a retry replays exactly.
        assert board.slots[1].native_cycles == cycles_before
        board.evaluate(1)  # next attempt succeeds

    def test_program_failure_preserves_current_design(self):
        board, program = board_with(COUNTER)
        board.set_var(1, "n", 7)
        board.faults = FaultPlan("program@0")
        compiler = BitstreamCompiler(DE10, SynthOptions())
        bitstream = compiler.compile(program.transform.module,
                                     program.hardware_text)
        with pytest.raises(ReprogramError):
            board.program(bitstream, {1: program})
        # The failed load fired before teardown: the old design survives.
        assert board.get_var(1, "n") == 7
        board.program(bitstream, {1: program})  # retry succeeds

    def test_board_death_is_persistent(self):
        board, _ = board_with(COUNTER)
        board.faults = FaultPlan("board_death@0")
        with pytest.raises(BoardDeadError):
            board.evaluate(1)
        assert board.dead
        assert board.slots == {}
        with pytest.raises(BoardDeadError):
            board.get_var(1, "n")
        assert isinstance(BoardDeadError("x"), PersistentFabricError)

    def test_error_hierarchy(self):
        assert issubclass(BoardError, PersistentFabricError)
        assert issubclass(SlotLockupError, TransientFabricError)
        assert issubclass(ReprogramError, TransientFabricError)
        assert issubclass(TransientFabricError, FabricError)
        assert issubclass(PersistentFabricError, FabricError)

    def test_env_selects_ambient_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "lockup:0.1")
        monkeypatch.setenv("REPRO_FAULT_SEED", "42")
        board = SimulatedBoard(DE10)
        assert board.faults is not None
        assert board.faults.seed == 42
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        assert SimulatedBoard(DE10).faults is None


class _FlakyTarget:
    """AbiTarget that fails the first *n* deliveries."""

    def __init__(self, failures, exc=AbiTimeoutError):
        self.failures = failures
        self.exc = exc
        self.attempts = 0

    def handle(self, engine_id: int, message: Message):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise self.exc(f"injected failure {self.attempts}")
        return "ok"


class TestChannelSupervision:
    def test_transient_failures_retried_with_backoff(self):
        policy = RetryPolicy(max_attempts=6, base_backoff_s=1e-4,
                             max_backoff_s=1e-2)
        channel = AbiChannel(_FlakyTarget(3), 1, 1e-6, retry=policy)
        assert channel.send(Get("n")) == "ok"
        assert channel.stats.retries == 3
        # Backoff doubles per attempt: 1e-4 + 2e-4 + 4e-4, plus one link
        # latency per attempt (4 deliveries).
        expected = 4 * 1e-6 + (1e-4 + 2e-4 + 4e-4)
        assert channel.stats.seconds == pytest.approx(expected)

    def test_backoff_ordering_and_cap(self):
        policy = RetryPolicy(base_backoff_s=1e-4, max_backoff_s=4e-4)
        backoffs = [policy.backoff_s(n) for n in range(1, 6)]
        assert backoffs == [1e-4, 2e-4, 4e-4, 4e-4, 4e-4]
        assert backoffs == sorted(backoffs)

    def test_exhausted_retries_escalate_to_persistent(self):
        policy = RetryPolicy(max_attempts=3)
        channel = AbiChannel(_FlakyTarget(99), 1, 1e-6, retry=policy)
        with pytest.raises(PersistentFabricError):
            channel.send(Get("n"))
        assert policy.exhausted == 1
        assert channel.stats.failures == 1

    def test_hang_detected_at_deadline(self):
        policy = RetryPolicy(max_attempts=1)  # no retry: surface the error
        target = _FlakyTarget(99, exc=lambda m: SlotHangError(m, 10.0))
        channel = AbiChannel(target, 1, 1e-6, retry=policy, deadline_s=3e-3)
        with pytest.raises(PersistentFabricError) as info:
            channel.send(Get("n"))
        assert isinstance(info.value.__cause__, DeadlineExceededError)
        assert channel.stats.deadline_hits == 1
        # The channel waits one deadline, not the full 10 s stall.
        assert channel.stats.seconds < 1.0

    def test_unsupervised_channel_rides_out_the_stall(self):
        policy = RetryPolicy(max_attempts=1)
        target = _FlakyTarget(99, exc=lambda m: SlotHangError(m, 10.0))
        channel = AbiChannel(target, 1, 1e-6, retry=policy, deadline_s=None)
        with pytest.raises(PersistentFabricError):
            channel.send(Get("n"))
        assert channel.stats.seconds >= 10.0

    def test_dropped_messages_retried(self):
        board, _ = board_with(COUNTER, faults=FaultPlan("abi_drop@0"))
        channel = AbiChannel(_BoardTarget(board), 1, 1e-6,
                             faults=board.faults,
                             deadline_s=DE10.op_deadline_s)
        board.set_var(1, "n", 5)
        assert channel.send(Get("n")) == 5
        assert channel.stats.retries == 1

    def test_duplicated_delivery_is_idempotent(self):
        board, _ = board_with(COUNTER, faults=FaultPlan("abi_dup@0"))
        channel = AbiChannel(_BoardTarget(board), 1, 1e-6,
                             faults=board.faults)
        board.set_var(1, "n", 9)
        assert channel.send(Get("n")) == 9
        assert channel.stats.redeliveries == 1


class _BoardTarget:
    def __init__(self, board):
        self.board = board

    def handle(self, engine_id: int, message: Message):
        assert isinstance(message, Get)
        return self.board.get_var(engine_id, message.name)


class TestRetryCall:
    def test_returns_result_and_accounting(self):
        policy = RetryPolicy()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ReprogramError("transient")
            return "done"

        result, retries, backoff = retry_call(policy, flaky)
        assert result == "done" and retries == 2
        assert backoff == pytest.approx(1e-4 + 2e-4)

    def test_persistent_errors_pass_through(self):
        policy = RetryPolicy()

        def dead():
            raise BoardDeadError("gone")

        with pytest.raises(BoardDeadError):
            retry_call(policy, dead)
        assert policy.retries == 0


NBA_LOOP_TRAP = """
module loop_nba_trap(clock);
  input wire clock;
  reg [7:0] cyc = 0;
  reg [7:0] mem [0:3];
  integer i;
  always @(posedge clock) begin
    cyc <= cyc + 1;
    for (i = 0; i < 3; i = i + 1)
      mem[i] <= cyc + i;
    $display("c=%0d", cyc);
  end
endmodule
"""


def _finish_tick(board, outcome):
    """Service pending traps and complete the tick (falling edge)."""
    while outcome.status == "trap":
        outcome = board.cont(1)
    board.set_var(1, "clock", 0)
    return board.evaluate(1)


def _run_ticks(board, n):
    for _ in range(n):
        board.set_var(1, "clock", 1)
        _finish_tick(board, board.evaluate(1))


class TestSnapshotRoundTrip:
    """Checkpoints must capture the §3.4 pending-update queues."""

    def test_narrowed_snapshot_includes_shadow_queues(self):
        source = (CORPUS / "loop_nba_memory.v").read_text()
        board, program = board_with(source)
        _run_ticks(board, 2)
        snap = board.snapshot(1, program.state.captured_names())
        queues = [n for n in snap if n.startswith("__wq") or
                  n.startswith("__wn")]
        assert queues, "pending-update queue state missing from snapshot"

    def test_tick_boundary_roundtrip_on_corpus(self):
        source = (CORPUS / "loop_nba_memory.v").read_text()
        board, program = board_with(source)
        _run_ticks(board, 2)
        snap = board.snapshot(1, program.state.captured_names())

        other, _ = board_with(source)
        other.restore(1, snap)
        _run_ticks(board, 3)
        _run_ticks(other, 3)
        assert board.snapshot(1) == other.snapshot(1)

    def test_mid_schedule_roundtrip_replays_identically(self):
        """Regression: a checkpoint taken at a trap — after the NBA loop
        ran but before the update state drained the queues — must carry
        ``__wqa/__wqd/__wn``, or the restored run drops the writes."""
        board, program = board_with(NBA_LOOP_TRAP)
        _run_ticks(board, 1)
        # Second tick: stop at the $display trap, queues loaded.
        board.set_var(1, "clock", 1)
        outcome = board.evaluate(1)
        assert outcome.status == "trap"
        assert board.get_var(1, "__wn_1") > 0  # live pending updates

        snap = board.snapshot(1, program.state.captured_names())
        other, _ = board_with(NBA_LOOP_TRAP)
        other.restore(1, snap)
        # Ports are driven by the runtime, not captured: resync the
        # virtual clock, then resume from the restored pending trap.
        other.set_var(1, "clock", 1)

        _finish_tick(board, outcome)
        _finish_tick(other, EvalOutcome("trap", outcome.task_id))
        _run_ticks(board, 2)
        _run_ticks(other, 2)
        board_snap, other_snap = board.snapshot(1), other.snapshot(1)
        board_snap.pop("clock", None), other_snap.pop("clock", None)
        assert board_snap == other_snap


class TestBackoffJitter:
    def test_jitter_spreads_within_bounds(self):
        import random

        policy = RetryPolicy(base_backoff_s=1e-4, max_backoff_s=4e-4,
                             jitter=0.25, rng=random.Random(7))
        base = RetryPolicy(base_backoff_s=1e-4, max_backoff_s=4e-4)
        draws = [policy.backoff_s(n) for n in range(1, 6)]
        for n, drawn in enumerate(draws, start=1):
            nominal = base.backoff_s(n)
            assert 0.75 * nominal <= drawn <= 1.25 * nominal
        # Jitter actually jitters: not every draw is the nominal value.
        assert any(d != base.backoff_s(n)
                   for n, d in enumerate(draws, start=1))

    def test_jitter_is_deterministic_under_replay(self):
        plan_a = FaultPlan("lockup:0.1", seed=11)
        plan_b = FaultPlan("lockup:0.1", seed=11)
        policy_a = RetryPolicy(jitter=0.25, rng=plan_a.rng_for("retry"))
        policy_b = RetryPolicy(jitter=0.25, rng=plan_b.rng_for("retry"))
        assert ([policy_a.backoff_s(n) for n in range(1, 8)]
                == [policy_b.backoff_s(n) for n in range(1, 8)])
        # A different seed gives a different (but still bounded) path.
        policy_c = RetryPolicy(
            jitter=0.25, rng=FaultPlan("lockup:0.1", seed=12).rng_for("retry"))
        assert ([policy_a.backoff_s(n) for n in range(1, 8)]
                != [policy_c.backoff_s(n) for n in range(1, 8)])

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_ambient_fault_plan_arms_jittered_retries(self, monkeypatch):
        from repro.hypervisor import Hypervisor

        monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
        calm = Hypervisor(DE10)
        assert calm.retry.jitter == 0.0
        monkeypatch.setenv("REPRO_FAULT_SPEC", "abi_drop:0.01")
        monkeypatch.setenv("REPRO_FAULT_SEED", "3")
        chaotic = Hypervisor(DE10)
        assert chaotic.retry.jitter == 0.25
        twin = Hypervisor(DE10)
        assert ([chaotic.retry.backoff_s(n) for n in range(1, 5)]
                == [twin.retry.backoff_s(n) for n in range(1, 5)])
