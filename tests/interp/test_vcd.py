"""The hand-rolled VCD dumper: claim discipline, waveform round trip."""

import os

import pytest

from repro.interp import TaskHost, VirtualFS
from repro.interp.compile import CompiledModuleCode
from repro.interp.compile.simulator import CompiledSimulator
from repro.interp.vcd import (
    VCDWriter, claim_vcd, read_vcd, reset_vcd_claim,
)
from repro.verilog import flatten, parse

COUNTER = """
module counter(input wire clock, input wire en);
  reg [7:0] n = 0;
  wire [7:0] next;
  assign next = n + 8'd1;
  always @(posedge clock) begin
    if (en) n <= next;
  end
endmodule
"""


@pytest.fixture(autouse=True)
def fresh_claim():
    reset_vcd_claim()
    yield
    reset_vcd_claim()


def dump_run(tmp_path, monkeypatch, ticks=6):
    path = tmp_path / "wave.vcd"
    monkeypatch.setenv("REPRO_VCD", str(path))
    flat = flatten(parse(COUNTER), "counter")
    sim = CompiledSimulator(flat, TaskHost(VirtualFS()),
                            code=CompiledModuleCode(flat))
    sim.set("en", 1)
    sim.tick(cycles=ticks)
    return path, sim


class TestClaim:
    def test_first_claim_wins(self):
        assert claim_vcd()
        assert not claim_vcd()
        reset_vcd_claim()
        assert claim_vcd()

    def test_no_env_no_writer(self, monkeypatch):
        monkeypatch.delenv("REPRO_VCD", raising=False)
        flat = flatten(parse(COUNTER), "counter")
        sim = CompiledSimulator(flat, TaskHost(VirtualFS()),
                                code=CompiledModuleCode(flat))
        assert sim._vcd is None


class TestRoundTrip:
    def test_dump_and_read_back(self, tmp_path, monkeypatch):
        path, sim = dump_run(tmp_path, monkeypatch, ticks=6)
        assert path.exists() and path.stat().st_size > 0
        timescale, waves = read_vcd(str(path))
        assert timescale == "1ns"
        assert "n" in waves and "clock" in waves
        # The counter increments once per tick; the last sample must
        # hold the live value and the history must be monotone.
        values = [v for _, v in waves["n"]]
        assert values[-1] == sim.get("n") == 6
        assert values == sorted(values)

    def test_times_monotone_and_changes_only(self, tmp_path, monkeypatch):
        path, _ = dump_run(tmp_path, monkeypatch, ticks=5)
        _, waves = read_vcd(str(path))
        for name, samples in waves.items():
            times = [t for t, _ in samples]
            assert times == sorted(times), name
            # Diff-scan dumping: consecutive samples always differ.
            for (_, a), (_, b) in zip(samples, samples[1:]):
                assert a != b, name

    def test_quiescent_ticks_emit_no_value_changes(self, tmp_path,
                                                   monkeypatch):
        path = tmp_path / "idle.vcd"
        monkeypatch.setenv("REPRO_VCD", str(path))
        flat = flatten(parse(COUNTER), "counter")
        sim = CompiledSimulator(flat, TaskHost(VirtualFS()),
                                code=CompiledModuleCode(flat, event=True))
        sim.set("en", 0)
        sim.tick(cycles=3)
        _, before = read_vcd(str(path))
        sim.tick(cycles=50)
        _, after = read_vcd(str(path))
        assert {k: v for k, v in after.items() if k != "clock"} == \
               {k: v for k, v in before.items() if k != "clock"}
