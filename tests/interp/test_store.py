"""Store tests: watchers, capture accounting, selective snapshots."""

import pytest

from repro.interp.store import Store
from repro.verilog import WidthEnv, parse_module

MOD = parse_module("""
module m(input wire clock);
  reg [7:0] a;
  reg [31:0] b;
  reg [15:0] mem [2:5];
endmodule
""")


@pytest.fixture
def store():
    return Store(WidthEnv(MOD))


class TestWatchers:
    def test_notified_on_change(self, store):
        seen = []
        store.add_watcher(seen.append)
        store.set("a", 1)
        assert seen == ["a"]

    def test_not_notified_on_same_value(self, store):
        seen = []
        store.set("a", 5)
        store.add_watcher(seen.append)
        store.set("a", 5)
        assert seen == []

    def test_memory_changes_notify(self, store):
        seen = []
        store.add_watcher(seen.append)
        store.mem_set("mem", 3, 9)
        assert seen == ["mem"]

    def test_notify_suppressed(self, store):
        seen = []
        store.add_watcher(seen.append)
        store.set("a", 7, notify=False)
        assert seen == []
        assert store.get("a") == 7


class TestMemoryAddressing:
    def test_base_offset(self, store):
        """Memory declared [2:5]: address 2 is the first element."""
        store.mem_set("mem", 2, 11)
        assert store.mem_get("mem", 2) == 11
        assert store.memories["mem"][0] == 11

    def test_out_of_range_read_is_zero(self, store):
        assert store.mem_get("mem", 99) == 0
        assert store.mem_get("mem", 0) == 0

    def test_out_of_range_write_dropped(self, store):
        assert store.mem_set("mem", 99, 5) is False

    def test_width_masked(self, store):
        store.mem_set("mem", 2, 0x1FFFF)
        assert store.mem_get("mem", 2) == 0xFFFF


class TestSnapshots:
    def test_selective_snapshot(self, store):
        store.set("a", 1)
        store.set("b", 2)
        snap = store.snapshot(["a"])
        assert set(snap) == {"a"}

    def test_state_bits_full(self, store):
        assert store.state_bits() == 8 + 32 + 16 * 4 + 1  # + clock wire

    def test_state_bits_selective(self, store):
        assert store.state_bits(["b"]) == 32
        assert store.state_bits(["mem"]) == 64

    def test_restore_ignores_unknown_names(self, store):
        store.restore({"ghost": 1, "a": 9})
        assert store.get("a") == 9

    def test_restore_memory_truncates_to_depth(self, store):
        store.restore({"mem": [1, 2, 3, 4, 5, 6, 7]})
        assert store.memories["mem"] == [1, 2, 3, 4]


class TestScalars:
    def test_set_returns_changed(self, store):
        assert store.set("a", 1) is True
        assert store.set("a", 1) is False

    def test_masking(self, store):
        store.set("a", 0x123)
        assert store.get("a") == 0x23

    def test_parameter_read_through(self):
        mod = parse_module(
            "module p(); parameter K = 7; reg [7:0] x; endmodule"
        )
        store = Store(WidthEnv(mod))
        assert store.get("K") == 7

    def test_unknown_name(self, store):
        with pytest.raises(KeyError):
            store.get("nope")
