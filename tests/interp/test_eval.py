"""Expression evaluator tests: 2-state semantics at Verilog widths."""

import pytest

from repro.interp.eval_expr import EvalError, Evaluator
from repro.interp.store import Store
from repro.verilog import WidthEnv, parse_expr, parse_module

MOD = parse_module("""
module m(input wire clock);
  reg [7:0] a;
  reg [7:0] b;
  reg [15:0] w;
  reg signed [7:0] s;
  reg signed [7:0] t;
  reg [31:0] mem [0:7];
  reg bit1;
endmodule
""")


@pytest.fixture
def ev():
    env = WidthEnv(MOD)
    store = Store(env)
    evaluator = Evaluator(env, store)
    store.set("a", 0xF0)
    store.set("b", 0x0F)
    store.set("w", 0xBEEF)
    store.set("s", 0xFF)  # -1
    store.set("t", 0x02)
    for i in range(8):
        store.mem_set("mem", i, i * 10)
    return evaluator


class TestArithmetic:
    def test_add_wraps_at_expression_width(self, ev):
        # a + b at 8 bits: 0xF0 + 0x0F = 0xFF, then +1 wraps.
        ev.store.set("b", 0x10)
        assert ev.eval(parse_expr("a + b")) == 0x00

    def test_add_with_wider_context_carries(self, ev):
        ev.store.set("b", 0x10)
        # In a 16-bit context the carry is preserved.
        assert ev.eval(parse_expr("a + b"), context_width=16) == 0x100

    def test_subtract_underflow(self, ev):
        assert ev.eval(parse_expr("b - a")) == (0x0F - 0xF0) & 0xFF

    def test_multiply_masks(self, ev):
        assert ev.eval(parse_expr("a * b")) == (0xF0 * 0x0F) & 0xFF

    def test_divide(self, ev):
        assert ev.eval(parse_expr("a / b")) == 0xF0 // 0x0F

    def test_divide_by_zero_is_all_ones(self, ev):
        ev.store.set("b", 0)
        assert ev.eval(parse_expr("a / b")) == 0xFF

    def test_modulo(self, ev):
        assert ev.eval(parse_expr("a % b")) == 0xF0 % 0x0F

    def test_unary_minus(self, ev):
        assert ev.eval(parse_expr("-b")) == (-0x0F) & 0xFF


class TestBitwiseAndShifts:
    def test_and_or_xor(self, ev):
        assert ev.eval(parse_expr("a & b")) == 0x00
        assert ev.eval(parse_expr("a | b")) == 0xFF
        assert ev.eval(parse_expr("a ^ b")) == 0xFF

    def test_invert(self, ev):
        assert ev.eval(parse_expr("~a")) == 0x0F

    def test_shift_left_masks(self, ev):
        assert ev.eval(parse_expr("a << 4")) == 0x00
        assert ev.eval(parse_expr("b << 4")) == 0xF0

    def test_shift_right(self, ev):
        assert ev.eval(parse_expr("a >> 4")) == 0x0F

    def test_arithmetic_shift_right_signed(self, ev):
        assert ev.eval(parse_expr("s >>> 2")) == 0xFF  # -1 >> 2 stays -1

    def test_huge_shift_is_zero(self, ev):
        assert ev.eval(parse_expr("a >> 5000")) == 0


class TestComparisons:
    def test_unsigned_compare(self, ev):
        assert ev.eval_bool(parse_expr("a > b"))

    def test_signed_compare(self, ev):
        # s = -1, t = 2 as signed.
        assert ev.eval_bool(parse_expr("s < t"))

    def test_mixed_sign_compares_unsigned(self, ev):
        # s (0xFF) vs unsigned a (0xF0): unsigned rules apply.
        assert ev.eval_bool(parse_expr("s > a"))

    def test_equality(self, ev):
        assert ev.eval_bool(parse_expr("a == 8'hF0"))
        assert ev.eval_bool(parse_expr("a != b"))


class TestReductionsAndLogical:
    def test_reduction_and(self, ev):
        ev.store.set("a", 0xFF)
        assert ev.eval(parse_expr("&a")) == 1
        ev.store.set("a", 0xFE)
        assert ev.eval(parse_expr("&a")) == 0

    def test_reduction_or(self, ev):
        assert ev.eval(parse_expr("|a")) == 1
        ev.store.set("a", 0)
        assert ev.eval(parse_expr("|a")) == 0

    def test_reduction_xor_parity(self, ev):
        ev.store.set("a", 0b1011)
        assert ev.eval(parse_expr("^a")) == 1
        ev.store.set("a", 0b1010)
        assert ev.eval(parse_expr("^a")) == 0

    def test_logical_short_circuit_semantics(self, ev):
        assert ev.eval(parse_expr("a && b")) == 1
        ev.store.set("b", 0)
        assert ev.eval(parse_expr("a && b")) == 0
        assert ev.eval(parse_expr("a || b")) == 1

    def test_logical_not(self, ev):
        assert ev.eval(parse_expr("!a")) == 0
        ev.store.set("a", 0)
        assert ev.eval(parse_expr("!a")) == 1


class TestSelectsAndConcat:
    def test_bit_select(self, ev):
        assert ev.eval(parse_expr("a[7]")) == 1
        assert ev.eval(parse_expr("a[0]")) == 0

    def test_part_select(self, ev):
        assert ev.eval(parse_expr("w[15:8]")) == 0xBE

    def test_indexed_part_select_up(self, ev):
        ev.store.set("b", 4)
        assert ev.eval(parse_expr("w[b +: 4]")) == 0xE

    def test_indexed_part_select_down(self, ev):
        ev.store.set("b", 7)
        assert ev.eval(parse_expr("w[b -: 8]")) == 0xEF

    def test_out_of_range_select_is_zero(self, ev):
        ev.store.set("b", 200)
        assert ev.eval(parse_expr("a[b]")) == 0

    def test_concat(self, ev):
        assert ev.eval(parse_expr("{a, b}")) == 0xF00F

    def test_replication(self, ev):
        ev.store.set("bit1", 1)
        assert ev.eval(parse_expr("{4{bit1}}")) == 0xF

    def test_memory_read(self, ev):
        assert ev.eval(parse_expr("mem[3]")) == 30

    def test_memory_bare_reference_raises(self, ev):
        with pytest.raises(EvalError):
            ev.eval(parse_expr("mem"))


class TestAssignment:
    def test_whole_register(self, ev):
        ev.assign(parse_expr("a"), 0x12)
        assert ev.store.get("a") == 0x12

    def test_bit(self, ev):
        ev.assign(parse_expr("a[0]"), 1)
        assert ev.store.get("a") == 0xF1

    def test_part(self, ev):
        ev.assign(parse_expr("w[7:0]"), 0xAA)
        assert ev.store.get("w") == 0xBEAA

    def test_memory_element(self, ev):
        ev.assign(parse_expr("mem[2]"), 999)
        assert ev.store.mem_get("mem", 2) == 999

    def test_concat_lvalue_splits_msb_first(self, ev):
        ev.assign(parse_expr("{a, b}"), 0x1234)
        assert ev.store.get("a") == 0x12
        assert ev.store.get("b") == 0x34

    def test_assignment_masks_to_width(self, ev):
        ev.assign(parse_expr("a"), 0x1FF)
        assert ev.store.get("a") == 0xFF

    def test_ternary_value(self, ev):
        assert ev.eval(parse_expr("a > b ? 8'd1 : 8'd2")) == 1
