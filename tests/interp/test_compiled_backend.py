"""Differential testing: compiled backend vs the reference interpreter.

Every ``src/repro/bench`` workload runs N ticks on both backends from
identical initial conditions; architectural state (``snapshot()``),
``$display`` output, and finish status must be bit-identical.  The
interpreter is the oracle — any divergence is a compiled-backend bug.
"""

import pytest

from repro.bench import BENCHMARKS, datagen, regexc
from repro.harness.common import bench_vfs
from repro.interp import (
    CompiledSimulator, InterpSimulator, Simulator, TaskHost, VirtualFS,
)
from repro.verilog import flatten, parse

#: (workload, ticks) — tick counts sized so the slow oracle stays fast
#: while still crossing resets, memory traffic, file IO and $finish.
WORKLOADS = [
    ("adpcm", 64),
    ("bitcoin", 24),
    ("df", 48),
    ("mips32", 64),
    ("nw", 64),
    ("regex", 64),
]


def _run(flat, vfs_factory, backend, ticks):
    host = TaskHost(vfs_factory())
    sim = Simulator(flat, host, backend=backend)
    sim.tick(cycles=ticks)
    return {
        "snapshot": sim.store.snapshot(),
        "display": list(host.display_log),
        "finished": host.finished,
        "finish_code": host.finish_code,
        "time": sim.time,
    }


@pytest.mark.parametrize("name,ticks", WORKLOADS)
def test_bench_workloads_identical(name, ticks):
    flat = flatten(parse(BENCHMARKS[name].source()), name)
    vfs_factory = lambda: bench_vfs(name, scale=1 << 12)
    interp = _run(flat, vfs_factory, "interp", ticks)
    compiled = _run(flat, vfs_factory, "compiled", ticks)
    assert compiled["display"] == interp["display"]
    assert compiled["finished"] == interp["finished"]
    assert compiled["finish_code"] == interp["finish_code"]
    assert compiled["time"] == interp["time"]
    diff = {
        key for key in interp["snapshot"]
        if interp["snapshot"][key] != compiled["snapshot"].get(key)
    }
    assert not diff, f"state divergence on {sorted(diff)[:8]}"
    assert compiled["snapshot"] == interp["snapshot"]


def test_regexc_matcher_identical():
    text = datagen.regex_text(512)
    flat = flatten(parse(regexc.source("a(b|c)*d")), "regexc")

    def vfs_factory():
        vfs = VirtualFS()
        vfs.add_file("regex_input.txt", text.encode())
        return vfs

    interp = _run(flat, vfs_factory, "interp", len(text) + 5)
    compiled = _run(flat, vfs_factory, "compiled", len(text) + 5)
    assert compiled == interp


def test_factory_backend_selection():
    flat = flatten(parse("module m(input wire clock); endmodule"), "m")
    assert isinstance(Simulator(flat, backend="interp"), InterpSimulator)
    compiled = Simulator(flat, backend="compiled")
    assert isinstance(compiled, CompiledSimulator)
    # The compiled simulator is also an InterpSimulator: cold paths
    # (system tasks, fallbacks) reuse the reference implementation.
    assert isinstance(compiled, InterpSimulator)
    with pytest.raises(ValueError):
        Simulator(flat, backend="jit")


def test_edge_before_star_keeps_interp_order():
    """An edge proc queued in the same drain as an always@* must run
    first when it was registered first (the interpreter's FIFO)."""
    src = """
        module m(input wire clock);
          reg d = 0;
          reg q = 0;
          reg comb = 0;
          initial d = 1;
          always @(posedge clock) q <= comb;
          always @(*) if (clock) comb = d; else comb = 0;
        endmodule
    """
    flat = flatten(parse(src), "m")
    results = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick()
        results[backend] = sim.store.snapshot()
    assert results["compiled"] == results["interp"]


def test_set_on_memory_name_matches_reference_store():
    """ABI set() on a declared memory name shadows, like the oracle."""
    flat = flatten(parse(
        "module m(input wire clock); reg [7:0] mem [0:3]; endmodule"), "m")
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        assert sim.store.set("mem", 5) is True
        assert sim.store.get("mem") == 5
        assert sim.store.mem_get("mem", 0) == 0


def test_impure_continuous_assign_matches_oracle():
    """$random in assign RHS forces oracle-identical FIFO ordering."""
    src = """
        module m(input wire clock);
          wire [31:0] r1 = $random;
          wire [31:0] r2 = $random;
          reg [31:0] a = 0;
          always @(posedge clock) a <= r1 ^ r2;
        endmodule
    """
    flat = flatten(parse(src), "m")
    snaps = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick(cycles=4)
        snaps[backend] = sim.store.snapshot()
    assert snaps["compiled"] == snaps["interp"]


def test_mixed_pure_impure_star_blocks_keep_interp_order():
    """A pure always@* must not be resequenced past an impure sibling."""
    src = """
        module m(input wire clock);
          reg a = 0;
          reg x = 0;
          always @(*) if (a) $display("x=%d", x);
          always @(*) x = a;
          always @(posedge clock) a <= 1;
        endmodule
    """
    flat = flatten(parse(src), "m")
    logs = {}
    for backend in ("interp", "compiled"):
        host = TaskHost()
        Simulator(flat, host, backend=backend).tick(cycles=2)
        logs[backend] = list(host.display_log)
    assert logs["compiled"] == logs["interp"] == ["x=0", "x=1"]


def test_long_settle_does_not_trip_convergence_guard():
    """The guard scales with process count, like the interpreter's."""
    src = """
        module m(input wire clock);
          reg go = 0;
          integer k = 0;
          reg [31:0] probe = 0;
          wire [31:0] kc = k + 1;
          always @(*) begin
            if (go && k < 6000) begin
              $display("step");
              k = k + 1;
            end
          end
          always @(*) probe = kc;
          always @(posedge clock) go <= 1;
        endmodule
    """
    flat = flatten(parse(src), "m")
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick(cycles=1)
        assert sim.get("k") == 6000


def test_negative_constant_shift_matches_oracle():
    """A negative constant shift amount masks unsigned, yielding 0."""
    src = """
        module m(input wire clock);
          parameter P = -1;
          reg [7:0] x = 8'hAA;
          wire [7:0] y = x >> P;
          wire [7:0] z = x << P;
        endmodule
    """
    flat = flatten(parse(src), "m")
    snaps = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.step()
        snaps[backend] = sim.store.snapshot()
    assert snaps["compiled"] == snaps["interp"]
    assert snaps["interp"]["y"] == 0


def test_save_restore_roundtrip_across_backends():
    """A snapshot taken on one backend restores onto the other."""
    src = """
        module m(input wire clock);
          reg [31:0] acc = 0;
          reg [7:0] mem [0:15];
          integer i;
          initial for (i = 0; i < 16; i = i + 1) mem[i] = i * 3;
          always @(posedge clock) acc <= acc + mem[acc[3:0]];
        endmodule
    """
    flat = flatten(parse(src), "m")
    a = Simulator(flat, TaskHost(), backend="compiled")
    b = Simulator(flat, TaskHost(), backend="interp")
    a.tick(cycles=9)
    b.restore_state(a.save_state())
    a.tick(cycles=7)
    b.tick(cycles=7)
    assert b.store.snapshot() == a.store.snapshot()
