"""Differential testing: compiled backend vs the reference interpreter.

Every ``src/repro/bench`` workload runs N ticks on both backends from
identical initial conditions; architectural state (``snapshot()``),
``$display`` output, and finish status must be bit-identical.  The
interpreter is the oracle — any divergence is a compiled-backend bug.
"""

import pytest

from repro.bench import BENCHMARKS, datagen, regexc
from repro.harness.common import bench_vfs
from repro.interp import (
    CompiledSimulator, InterpSimulator, Simulator, TaskHost, VirtualFS,
)
from repro.verilog import flatten, parse

#: (workload, ticks) — tick counts sized so the slow oracle stays fast
#: while still crossing resets, memory traffic, file IO and $finish.
WORKLOADS = [
    ("adpcm", 64),
    ("bitcoin", 24),
    ("df", 48),
    ("mips32", 64),
    ("nw", 64),
    ("regex", 64),
]


def _run(flat, vfs_factory, backend, ticks):
    host = TaskHost(vfs_factory())
    sim = Simulator(flat, host, backend=backend)
    sim.tick(cycles=ticks)
    return {
        "snapshot": sim.store.snapshot(),
        "display": list(host.display_log),
        "finished": host.finished,
        "finish_code": host.finish_code,
        "time": sim.time,
    }


@pytest.mark.parametrize("name,ticks", WORKLOADS)
def test_bench_workloads_identical(name, ticks):
    flat = flatten(parse(BENCHMARKS[name].source()), name)
    vfs_factory = lambda: bench_vfs(name, scale=1 << 12)
    interp = _run(flat, vfs_factory, "interp", ticks)
    compiled = _run(flat, vfs_factory, "compiled", ticks)
    assert compiled["display"] == interp["display"]
    assert compiled["finished"] == interp["finished"]
    assert compiled["finish_code"] == interp["finish_code"]
    assert compiled["time"] == interp["time"]
    diff = {
        key for key in interp["snapshot"]
        if interp["snapshot"][key] != compiled["snapshot"].get(key)
    }
    assert not diff, f"state divergence on {sorted(diff)[:8]}"
    assert compiled["snapshot"] == interp["snapshot"]


def test_regexc_matcher_identical():
    text = datagen.regex_text(512)
    flat = flatten(parse(regexc.source("a(b|c)*d")), "regexc")

    def vfs_factory():
        vfs = VirtualFS()
        vfs.add_file("regex_input.txt", text.encode())
        return vfs

    interp = _run(flat, vfs_factory, "interp", len(text) + 5)
    compiled = _run(flat, vfs_factory, "compiled", len(text) + 5)
    assert compiled == interp


def test_factory_backend_selection():
    flat = flatten(parse("module m(input wire clock); endmodule"), "m")
    assert isinstance(Simulator(flat, backend="interp"), InterpSimulator)
    compiled = Simulator(flat, backend="compiled")
    assert isinstance(compiled, CompiledSimulator)
    # The compiled simulator is also an InterpSimulator: cold paths
    # (system tasks, fallbacks) reuse the reference implementation.
    assert isinstance(compiled, InterpSimulator)
    with pytest.raises(ValueError):
        Simulator(flat, backend="jit")


def test_edge_before_star_keeps_interp_order():
    """An edge proc queued in the same drain as an always@* must run
    first when it was registered first (the interpreter's FIFO)."""
    src = """
        module m(input wire clock);
          reg d = 0;
          reg q = 0;
          reg comb = 0;
          initial d = 1;
          always @(posedge clock) q <= comb;
          always @(*) if (clock) comb = d; else comb = 0;
        endmodule
    """
    flat = flatten(parse(src), "m")
    results = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick()
        results[backend] = sim.store.snapshot()
    assert results["compiled"] == results["interp"]


def test_set_on_memory_name_matches_reference_store():
    """ABI set() on a declared memory name shadows, like the oracle."""
    flat = flatten(parse(
        "module m(input wire clock); reg [7:0] mem [0:3]; endmodule"), "m")
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        assert sim.store.set("mem", 5) is True
        assert sim.store.get("mem") == 5
        assert sim.store.mem_get("mem", 0) == 0


def test_impure_continuous_assign_matches_oracle():
    """$random in assign RHS forces oracle-identical FIFO ordering."""
    src = """
        module m(input wire clock);
          wire [31:0] r1 = $random;
          wire [31:0] r2 = $random;
          reg [31:0] a = 0;
          always @(posedge clock) a <= r1 ^ r2;
        endmodule
    """
    flat = flatten(parse(src), "m")
    snaps = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick(cycles=4)
        snaps[backend] = sim.store.snapshot()
    assert snaps["compiled"] == snaps["interp"]


def test_mixed_pure_impure_star_blocks_keep_interp_order():
    """A pure always@* must not be resequenced past an impure sibling."""
    src = """
        module m(input wire clock);
          reg a = 0;
          reg x = 0;
          always @(*) if (a) $display("x=%d", x);
          always @(*) x = a;
          always @(posedge clock) a <= 1;
        endmodule
    """
    flat = flatten(parse(src), "m")
    logs = {}
    for backend in ("interp", "compiled"):
        host = TaskHost()
        Simulator(flat, host, backend=backend).tick(cycles=2)
        logs[backend] = list(host.display_log)
    assert logs["compiled"] == logs["interp"] == ["x=0", "x=1"]


def test_long_settle_does_not_trip_convergence_guard():
    """The guard scales with process count, like the interpreter's."""
    src = """
        module m(input wire clock);
          reg go = 0;
          integer k = 0;
          reg [31:0] probe = 0;
          wire [31:0] kc = k + 1;
          always @(*) begin
            if (go && k < 6000) begin
              $display("step");
              k = k + 1;
            end
          end
          always @(*) probe = kc;
          always @(posedge clock) go <= 1;
        endmodule
    """
    flat = flatten(parse(src), "m")
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick(cycles=1)
        assert sim.get("k") == 6000


def test_negative_constant_shift_matches_oracle():
    """A negative constant shift amount masks unsigned, yielding 0."""
    src = """
        module m(input wire clock);
          parameter P = -1;
          reg [7:0] x = 8'hAA;
          wire [7:0] y = x >> P;
          wire [7:0] z = x << P;
        endmodule
    """
    flat = flatten(parse(src), "m")
    snaps = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.step()
        snaps[backend] = sim.store.snapshot()
    assert snaps["compiled"] == snaps["interp"]
    assert snaps["interp"]["y"] == 0


def test_display_ordering_across_blocks_and_write_buffer():
    """$display interleaving with $write buffering must match the
    oracle line for line (seeded from corpus find display_ordering.v:
    two blocks printing in one tick plus case-arm prints)."""
    src = """
        module m(input wire clock);
          reg [3:0] cyc = 0;
          always @(posedge clock) begin
            cyc <= cyc + 1;
            $write("A%0d:", cyc);
            if (cyc[0]) $display("odd"); else $display("even");
            case (cyc[1:0])
              2'd2: $display("two");
              default: ;
            endcase
          end
          always @(posedge clock) $display("B%0d", cyc);
        endmodule
    """
    flat = flatten(parse(src), "m")
    logs = {}
    for backend in ("interp", "compiled"):
        host = TaskHost()
        Simulator(flat, host, backend=backend).tick(cycles=4)
        logs[backend] = list(host.display_log)
    assert logs["compiled"] == logs["interp"]
    assert logs["interp"][:4] == ["A0:even", "B0", "A1:odd", "B1"]


def test_finish_mid_eval_abandons_rest_of_tick():
    """$finish aborts the remaining evaluation identically: trailing
    statements, later sibling blocks and pending NBAs are abandoned
    (seeded from corpus find finish_mid_eval.v)."""
    src = """
        module m(input wire clock);
          reg [7:0] cyc = 0;
          reg [7:0] after_f = 0;
          reg [7:0] sibling = 0;
          always @(posedge clock) begin
            cyc <= cyc + 1;
            if (cyc == 2) begin
              $display("bye %0d", cyc);
              $finish(3);
              $display("never");
            end
            after_f <= after_f + 1;
          end
          always @(posedge clock) sibling <= sibling + 1;
        endmodule
    """
    flat = flatten(parse(src), "m")
    results = {}
    for backend in ("interp", "compiled"):
        host = TaskHost()
        sim = Simulator(flat, host, backend=backend)
        sim.tick(cycles=8)
        results[backend] = {
            "snapshot": sim.store.snapshot(),
            "display": list(host.display_log),
            "finish_code": host.finish_code,
            "time": sim.time,
        }
    assert results["compiled"] == results["interp"]
    ref = results["interp"]
    assert ref["display"] == ["bye 2"]
    assert ref["finish_code"] == 3
    # The finishing tick's trailing statements never ran: the sibling
    # block and the post-$finish NBA were abandoned, and the pending
    # cyc NBA was never latched.
    assert ref["snapshot"]["cyc"] == 2
    assert ref["snapshot"]["after_f"] == 2
    assert ref["snapshot"]["sibling"] == 2


def test_nba_memory_index_captured_at_execution():
    """LRM §9.2.2: an NBA lvalue index is evaluated when the statement
    executes, even when the index operand is NBA'd in the same tick
    (regression for corpus find nba_index_capture.v)."""
    src = """
        module m(input wire clock);
          reg [1:0] ptr = 0;
          reg [7:0] mem [0:3];
          always @(posedge clock) begin
            ptr <= ptr + 1;
            mem[ptr] <= {6'd0, ptr} + 8'd10;
          end
        endmodule
    """
    flat = flatten(parse(src), "m")
    snaps = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick(cycles=3)
        snaps[backend] = sim.store.snapshot()
    assert snaps["compiled"] == snaps["interp"]
    # Tick k writes mem[k] = k + 10 through the *pre-update* pointer.
    assert snaps["interp"]["mem"] == [10, 11, 12, 0]


def test_nba_index_wider_than_32_bits_not_truncated():
    """A frozen NBA index must keep its full width: a 48-bit address
    with high bits set is out of range and the write is dropped — not
    masked to 32 bits and aliased onto a valid element."""
    src = """
        module m(input wire clock);
          reg [47:0] big = 48'h100000003;
          reg [7:0] mem [0:15];
          always @(posedge clock) mem[big] <= 8'hAA;
        endmodule
    """
    flat = flatten(parse(src), "m")
    snaps = {}
    for backend in ("interp", "compiled"):
        sim = Simulator(flat, TaskHost(), backend=backend)
        sim.tick(cycles=2)
        snaps[backend] = sim.store.snapshot()
    assert snaps["compiled"] == snaps["interp"]
    assert snaps["interp"]["mem"] == [0] * 16


def test_save_restore_roundtrip_across_backends():
    """A snapshot taken on one backend restores onto the other."""
    src = """
        module m(input wire clock);
          reg [31:0] acc = 0;
          reg [7:0] mem [0:15];
          integer i;
          initial for (i = 0; i < 16; i = i + 1) mem[i] = i * 3;
          always @(posedge clock) acc <= acc + mem[acc[3:0]];
        endmodule
    """
    flat = flatten(parse(src), "m")
    a = Simulator(flat, TaskHost(), backend="compiled")
    b = Simulator(flat, TaskHost(), backend="interp")
    a.tick(cycles=9)
    b.restore_state(a.save_state())
    a.tick(cycles=7)
    b.tick(cycles=7)
    assert b.store.snapshot() == a.store.snapshot()
