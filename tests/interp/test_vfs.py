"""Virtual filesystem tests: C-style EOF semantics and snapshots."""

from repro.interp.vfs import VirtualFS


class TestOpenClose:
    def test_fopen_returns_distinct_descriptors(self):
        vfs = VirtualFS()
        vfs.add_file("a", b"x")
        vfs.add_file("b", b"y")
        fd1, fd2 = vfs.fopen("a"), vfs.fopen("b")
        assert fd1 != fd2 and fd1 >= 3

    def test_fopen_missing_read_fails(self):
        assert VirtualFS().fopen("nope") == 0

    def test_fopen_write_creates(self):
        vfs = VirtualFS()
        fd = vfs.fopen("new.txt", "w")
        assert fd != 0
        vfs.fwrite(fd, "hello")
        vfs.fclose(fd)
        assert vfs.files["new.txt"] == b"hello"

    def test_fclose_unknown_fd_is_noop(self):
        VirtualFS().fclose(42)


class TestEofSemantics:
    def test_eof_only_after_failed_read(self):
        vfs = VirtualFS()
        vfs.add_file("d", bytes(8))
        fd = vfs.fopen("d")
        # Two full words consume the file exactly...
        assert vfs.fread_word(fd, 32) is not None
        assert vfs.fread_word(fd, 32) is not None
        # ...but EOF is not yet raised (C semantics).
        assert vfs.feof(fd) == 0
        # The failing read raises it.
        assert vfs.fread_word(fd, 32) is None
        assert vfs.feof(fd) == 1

    def test_short_read_sets_eof(self):
        vfs = VirtualFS()
        vfs.add_file("d", b"\x01\x02")  # 2 bytes, need 4
        fd = vfs.fopen("d")
        assert vfs.fread_word(fd, 32) is None
        assert vfs.feof(fd) == 1

    def test_fgetc_eof_sentinel(self):
        vfs = VirtualFS()
        vfs.add_file("d", b"A")
        fd = vfs.fopen("d")
        assert vfs.fgetc(fd) == ord("A")
        assert vfs.fgetc(fd) == 0xFFFFFFFF
        assert vfs.feof(fd) == 1

    def test_feof_of_bad_fd(self):
        assert VirtualFS().feof(99) == 1


class TestWordReads:
    def test_big_endian(self):
        vfs = VirtualFS()
        vfs.add_file("d", b"\xDE\xAD\xBE\xEF")
        fd = vfs.fopen("d")
        assert vfs.fread_word(fd, 32) == 0xDEADBEEF

    def test_width_rounds_up_to_bytes(self):
        vfs = VirtualFS()
        vfs.add_file("d", b"\xAB\xCD")
        fd = vfs.fopen("d")
        assert vfs.fread_word(fd, 12) == 0xABCD  # 12 bits -> 2 bytes

    def test_wide_read(self):
        vfs = VirtualFS()
        vfs.add_file("d", bytes(range(16)))
        fd = vfs.fopen("d")
        value = vfs.fread_word(fd, 128)
        assert value == int.from_bytes(bytes(range(16)), "big")


class TestSnapshot:
    def test_cursor_and_eof_survive(self):
        vfs = VirtualFS()
        vfs.add_file("d", bytes(12))
        fd = vfs.fopen("d")
        vfs.fread_word(fd, 32)
        snap = vfs.snapshot()

        other = VirtualFS()
        other.add_file("d", bytes(12))
        other.restore(snap)
        # Second word continues from the saved cursor.
        assert other.fread_word(fd, 32) is not None
        assert other.fread_word(fd, 32) is not None
        assert other.fread_word(fd, 32) is None

    def test_next_fd_survives(self):
        vfs = VirtualFS()
        vfs.add_file("d", b"ab")
        vfs.fopen("d")
        snap = vfs.snapshot()
        other = VirtualFS()
        other.add_file("d", b"ab")
        other.add_file("e", b"cd")
        other.restore(snap)
        new_fd = other.fopen("e")
        assert new_fd not in snap["paths"]
