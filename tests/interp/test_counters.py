"""Performance-counter plumbing: the measurements the perf model uses."""

from repro.interp import Simulator, TaskHost
from repro.verilog import flatten, parse


def sim_for(text):
    source = parse(text)
    return Simulator(flatten(source, source.modules[-1].name), TaskHost())


class TestCounters:
    def test_stmts_executed_grows_with_work(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [31:0] total = 0;
              integer i;
              always @(posedge clock)
                for (i = 0; i < 10; i = i + 1)
                  total = total + i;
            endmodule
        """)
        before = sim.stmts_executed
        sim.tick()
        light_delta = sim.stmts_executed - before

        sim2 = sim_for("""
            module m(input wire clock);
              reg [31:0] total = 0;
              integer i;
              always @(posedge clock)
                for (i = 0; i < 100; i = i + 1)
                  total = total + i;
            endmodule
        """)
        before2 = sim2.stmts_executed
        sim2.tick()
        assert sim2.stmts_executed - before2 > light_delta

    def test_settle_rounds_counted(self):
        sim = sim_for("""
            module m(input wire a);
              wire b = a + 1;
              wire c = b + 1;
            endmodule
        """)
        before = sim.settle_rounds
        sim.set("a", 1)
        sim.step()
        assert sim.settle_rounds > before

    def test_ops_evaluated(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [31:0] x = 0;
              always @(posedge clock) x <= (x + 1) * 3;
            endmodule
        """)
        before = sim.evaluator.ops_evaluated
        sim.tick()
        assert sim.evaluator.ops_evaluated > before

    def test_time_counts_ticks(self):
        sim = sim_for("""
            module m(input wire clock);
              reg r = 0;
              always @(posedge clock) r <= ~r;
            endmodule
        """)
        sim.tick(cycles=7)
        assert sim.time == 7
