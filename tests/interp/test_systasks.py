"""System task tests: display formatting, file IO, control tasks."""

import struct

import pytest

from repro.interp import Simulator, TaskHost, VirtualFS, verilog_format
from repro.verilog import flatten, parse


def run_module(text, host=None, cycles=50):
    host = host or TaskHost()
    source = parse(text)
    sim = Simulator(flatten(source, source.modules[-1].name), host)
    sim.run(max_cycles=cycles)
    return sim, host


class TestFormat:
    def test_decimal(self):
        assert verilog_format("%d", [42]) == "42"

    def test_width_padding(self):
        assert verilog_format("%5d", [42]) == "   42"

    def test_zero_width(self):
        assert verilog_format("%0d", [42]) == "42"

    def test_hex_binary_octal(self):
        assert verilog_format("%h %b %o", [255, 5, 8]) == "ff 101 10"

    def test_char(self):
        assert verilog_format("%c", [65]) == "A"

    def test_string_passthrough(self):
        assert verilog_format("%s!", ["hi"]) == "hi!"

    def test_packed_string(self):
        packed = (ord("o") << 8) | ord("k")
        assert verilog_format("%s", [packed]) == "ok"

    def test_percent_escape(self):
        assert verilog_format("100%%", []) == "100%"

    def test_missing_args_default_zero(self):
        assert verilog_format("%d", []) == "0"


class TestDisplayTasks:
    def test_display_with_format(self):
        _, host = run_module("""
            module m(input wire clock);
              reg [7:0] x = 7;
              always @(posedge clock) begin
                $display("x=%0d", x);
                $finish;
              end
            endmodule
        """)
        assert host.display_log[0] == "x=7"

    def test_display_without_format_joins_values(self):
        _, host = run_module("""
            module m(input wire clock);
              always @(posedge clock) begin
                $display(1, 2);
                $finish;
              end
            endmodule
        """)
        assert host.display_log[0] == "1 2"

    def test_write_buffers_until_display(self):
        _, host = run_module("""
            module m(input wire clock);
              always @(posedge clock) begin
                $write("a");
                $write("b");
                $display("c");
                $finish;
              end
            endmodule
        """)
        assert host.display_log[0] == "abc"

    def test_unknown_task_is_nonfatal(self):
        _, host = run_module("""
            module m(input wire clock);
              always @(posedge clock) begin
                $made_up_task(1);
                $finish;
              end
            endmodule
        """)
        assert "unsupported" in host.display_log[0]


class TestControlTasks:
    def test_finish_stops_run(self):
        sim, host = run_module("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) begin
                n <= n + 1;
                if (n == 3) $finish(2);
              end
            endmodule
        """)
        assert host.finished and host.finish_code == 2
        assert sim.get("n") <= 5

    def test_save_restart_flags(self):
        _, host = run_module("""
            module m(input wire clock);
              always @(posedge clock) begin
                $save;
                $finish;
              end
            endmodule
        """)
        assert host.save_requested

    def test_yield_flag(self):
        _, host = run_module("""
            module m(input wire clock);
              always @(posedge clock) begin
                $yield;
                $finish;
              end
            endmodule
        """)
        assert host.yield_asserted


class TestFileIO:
    def make_host(self):
        vfs = VirtualFS()
        vfs.add_file("in.bin", struct.pack(">IIII", 10, 20, 30, 40))
        vfs.add_file("text.txt", b"xyz")
        return TaskHost(vfs=vfs)

    def test_fopen_missing_file_returns_zero(self):
        _, host = run_module("""
            module m(input wire clock);
              integer fd;
              always @(posedge clock) begin
                fd = $fopen("missing.bin");
                $finish;
              end
            endmodule
        """)
        # fd assigned 0 for missing read-mode file

    def test_fread_sequence(self):
        sim, host = run_module("""
            module m(input wire clock);
              integer fd = $fopen("in.bin");
              reg [31:0] v = 0;
              reg [63:0] total = 0;
              always @(posedge clock) begin
                $fread(fd, v);
                if ($feof(fd)) $finish;
                else total <= total + v;
              end
            endmodule
        """, host=self.make_host())
        assert sim.get("total") == 100

    def test_fgetc(self):
        sim, host = run_module("""
            module m(input wire clock);
              integer fd = $fopen("text.txt");
              reg [31:0] c;
              reg [31:0] count = 0;
              always @(posedge clock) begin
                c = $fgetc(fd);
                if ($feof(fd)) $finish;
                else count <= count + 1;
              end
            endmodule
        """, host=self.make_host())
        assert sim.get("count") == 3

    def test_fwrite_captured(self):
        _, host = run_module("""
            module m(input wire clock);
              integer fd = $fopen("out.txt", "w");
              always @(posedge clock) begin
                $fwrite(fd, "n=%0d", 5);
                $fclose(fd);
                $finish;
              end
            endmodule
        """, host=self.make_host())
        assert host.vfs.files["out.txt"] == b"n=5"

    def test_readmemh(self):
        host = TaskHost(vfs=VirtualFS())
        host.vfs.add_file("image.hex", b"aa bb @4 cc")
        sim, _ = run_module("""
            module m(input wire clock);
              reg [7:0] mem [0:7];
              initial $readmemh("image.hex", mem);
            endmodule
        """, host=host)
        assert sim.store.mem_get("mem", 0) == 0xAA
        assert sim.store.mem_get("mem", 1) == 0xBB
        assert sim.store.mem_get("mem", 4) == 0xCC


class TestRandom:
    def test_random_is_deterministic(self):
        a = TaskHost(seed=5)
        b = TaskHost(seed=5)
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    def test_seed_changes_stream(self):
        assert TaskHost(seed=1).random() != TaskHost(seed=2).random()
