"""Event-driven simulator tests: Verilog scheduling semantics (§2)."""

import pytest

from repro.interp import Simulator, TaskHost, VirtualFS
from repro.verilog import flatten, parse


def sim_for(text, top=None, host=None):
    source = parse(text)
    name = top or source.modules[-1].name
    return Simulator(flatten(source, name), host)


class TestCombinational:
    def test_continuous_assign_propagates(self):
        sim = sim_for("""
            module m(input wire [3:0] a, output wire [3:0] y);
              assign y = a + 1;
            endmodule
        """)
        sim.set("a", 3)
        sim.step()
        assert sim.get("y") == 4

    def test_assign_chain(self):
        sim = sim_for("""
            module m(input wire [3:0] a);
              wire [3:0] b = a + 1;
              wire [3:0] c = b * 2;
              wire [3:0] d = c - 1;
            endmodule
        """)
        sim.set("a", 2)
        sim.step()
        assert sim.get("d") == 5

    def test_always_star(self):
        sim = sim_for("""
            module m(input wire [3:0] a);
              reg [3:0] y;
              always @(*) y = a & 4'h3;
            endmodule
        """)
        sim.set("a", 0xF)
        sim.step()
        assert sim.get("y") == 3

    def test_combinational_loop_detected(self):
        sim_text = """
            module m(input wire a);
              wire x;
              wire y;
              assign x = y ^ a;
              assign y = x;
            endmodule
        """
        from repro.interp.simulator import SimulationError

        sim = sim_for(sim_text)
        sim.set("a", 1)
        with pytest.raises(SimulationError):
            sim.step()


class TestSequential:
    def test_posedge_triggers_once_per_edge(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """)
        sim.tick(cycles=3)
        assert sim.get("n") == 3
        # A rising edge fires once; holding the level must not retrigger.
        sim.set("clock", 1)
        sim.step()
        assert sim.get("n") == 4
        sim.set("clock", 1)  # still high: no edge
        sim.step()
        sim.step()
        assert sim.get("n") == 4

    def test_negedge(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(negedge clock) n <= n + 1;
            endmodule
        """)
        sim.tick(cycles=2)  # two full periods = two falling edges
        assert sim.get("n") == 2

    def test_any_edge(self):
        sim = sim_for("""
            module m(input wire sig);
              reg [7:0] n = 0;
              always @(sig) n <= n + 1;
            endmodule
        """)
        sim.set("sig", 1); sim.step()
        sim.set("sig", 0); sim.step()
        assert sim.get("n") == 2

    def test_blocking_visible_immediately(self):
        """Figure 1 line 11-12: r = y then read of r sees the new value."""
        sim = sim_for("""
            module m(input wire clock);
              wire [31:0] x = 1;
              wire [31:0] y = x + 1;
              reg [63:0] r = 0;
              reg [63:0] seen = 0;
              always @(posedge clock) begin
                r = y;
                seen = r;
              end
            endmodule
        """)
        sim.tick()
        assert sim.get("seen") == 2

    def test_nonblocking_defers_to_update(self):
        """Figure 1 lines 10-14: `<=` latches after the whole tick."""
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] r = 0;
              reg [7:0] before_update = 55;
              always @(posedge clock) begin
                r <= 3;
                before_update = r;
              end
            endmodule
        """)
        sim.tick()
        assert sim.get("before_update") == 0  # old value mid-tick
        assert sim.get("r") == 3              # latched by tick end

    def test_blocking_then_nonblocking_order(self):
        """Figure 1 exactly: r = y; r <= 3 — the NBA wins the tick."""
        sim = sim_for("""
            module m(input wire clock);
              wire [31:0] y = 2;
              reg [63:0] r = 0;
              always @(posedge clock) begin
                r = y;
                r <= 3;
              end
            endmodule
        """)
        sim.tick()
        assert sim.get("r") == 3

    def test_nba_swap(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] a = 1;
              reg [7:0] b = 2;
              always @(posedge clock) begin
                a <= b;
                b <= a;
              end
            endmodule
        """)
        sim.tick()
        assert (sim.get("a"), sim.get("b")) == (2, 1)

    def test_two_always_blocks_communicate_via_nba(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] stage1 = 0;
              reg [7:0] stage2 = 0;
              always @(posedge clock) stage1 <= stage1 + 1;
              always @(posedge clock) stage2 <= stage1;
            endmodule
        """)
        sim.tick(cycles=2)
        assert sim.get("stage1") == 2
        assert sim.get("stage2") == 1  # pipeline: sees the OLD stage1

    def test_fork_join_executes_all(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] a = 0;
              reg [7:0] b = 0;
              always @(posedge clock) fork
                a <= 8'd5;
                b <= 8'd6;
              join
            endmodule
        """)
        sim.tick()
        assert (sim.get("a"), sim.get("b")) == (5, 6)

    def test_multiple_clock_domains(self):
        sim = sim_for("""
            module m(input wire cka, input wire ckb);
              reg [7:0] na = 0;
              reg [7:0] nb = 0;
              always @(posedge cka) na <= na + 1;
              always @(posedge ckb) nb <= nb + 1;
            endmodule
        """)
        sim.tick(clock="cka", cycles=3)
        sim.tick(clock="ckb", cycles=1)
        assert (sim.get("na"), sim.get("nb")) == (3, 1)


class TestProceduralControl:
    def test_if_else(self):
        sim = sim_for("""
            module m(input wire clock, input wire sel);
              reg [3:0] y = 0;
              always @(posedge clock)
                if (sel) y <= 4'hA; else y <= 4'hB;
            endmodule
        """)
        sim.tick()
        assert sim.get("y") == 0xB
        sim.set("sel", 1)
        sim.tick()
        assert sim.get("y") == 0xA

    def test_case_with_default(self):
        sim = sim_for("""
            module m(input wire clock, input wire [1:0] op);
              reg [7:0] y = 0;
              always @(posedge clock)
                case (op)
                  2'd0: y <= 10;
                  2'd1: y <= 20;
                  default: y <= 99;
                endcase
            endmodule
        """)
        sim.set("op", 1); sim.tick()
        assert sim.get("y") == 20
        sim.set("op", 3); sim.tick()
        assert sim.get("y") == 99

    def test_casez_dontcare(self):
        sim = sim_for("""
            module m(input wire clock, input wire [3:0] op);
              reg [7:0] y = 0;
              always @(posedge clock)
                casez (op)
                  4'b1???: y <= 1;
                  4'b01??: y <= 2;
                  default: y <= 3;
                endcase
            endmodule
        """)
        sim.set("op", 0b1010); sim.tick()
        assert sim.get("y") == 1
        sim.set("op", 0b0110); sim.tick()
        assert sim.get("y") == 2
        sim.set("op", 0b0010); sim.tick()
        assert sim.get("y") == 3

    def test_for_loop(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [31:0] total = 0;
              integer i;
              always @(posedge clock) begin
                total = 0;
                for (i = 1; i <= 10; i = i + 1)
                  total = total + i;
              end
            endmodule
        """)
        sim.tick()
        assert sim.get("total") == 55

    def test_while_loop(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [31:0] x = 1;
              always @(posedge clock)
                while (x < 100) x = x * 2;
            endmodule
        """)
        sim.tick()
        assert sim.get("x") == 128

    def test_memory_write_and_read(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [31:0] mem [0:15];
              reg [31:0] out = 0;
              reg [3:0] i = 0;
              always @(posedge clock) begin
                mem[i] <= i * 3;
                out <= mem[i];
                i <= i + 1;
              end
            endmodule
        """)
        sim.tick(cycles=3)
        assert sim.store.mem_get("mem", 0) == 0
        assert sim.store.mem_get("mem", 1) == 3
        assert sim.store.mem_get("mem", 2) == 6


class TestInitialAndInit:
    def test_initializers(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] a = 8'h42;
              wire [7:0] b = a + 1;
            endmodule
        """)
        assert sim.get("a") == 0x42
        assert sim.get("b") == 0x43

    def test_initial_block_runs_once(self):
        sim = sim_for("""
            module m(input wire clock);
              reg [7:0] mem [0:3];
              initial begin
                mem[0] = 10;
                mem[1] = 20;
              end
            endmodule
        """)
        assert sim.store.mem_get("mem", 0) == 10
        assert sim.store.mem_get("mem", 1) == 20

    def test_initializer_referencing_parameter(self):
        sim = sim_for("""
            module m(input wire clock);
              parameter START = 7;
              reg [7:0] x = START * 2;
            endmodule
        """)
        assert sim.get("x") == 14


class TestStateCapture:
    def test_save_restore_roundtrip(self):
        text = """
            module m(input wire clock);
              reg [31:0] n = 0;
              reg [7:0] mem [0:3];
              always @(posedge clock) begin
                n <= n + 1;
                mem[n[1:0]] <= n[7:0];
              end
            endmodule
        """
        sim = sim_for(text)
        sim.tick(cycles=5)
        snap = sim.save_state()
        clone = sim_for(text)
        clone.restore_state(snap)
        assert clone.get("n") == sim.get("n")
        sim.tick(cycles=3)
        clone.tick(cycles=3)
        assert clone.get("n") == sim.get("n")
        assert clone.store.memories["mem"] == sim.store.memories["mem"]

    def test_restore_does_not_fabricate_edges(self):
        text = """
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """
        sim = sim_for(text)
        sim.tick(cycles=2)
        snap = sim.save_state()
        clone = sim_for(text)
        clone.restore_state(snap)
        clone.step()
        assert clone.get("n") == 2  # no phantom increment
