"""Event-driven activity scheduling: wake-up sets, idle proof, activity.

The event scheduler (``REPRO_SIM_EVENT``, default on) replaces the O2
static sweep with per-signal sensitivity dispatch: writes wake exactly
the combinational cones that read them, clock-gated registered blocks
are skipped when their enables are low, and a quiescent design proves
``is_idle()`` so the hypervisor can fast-forward it for free.  The
always-sweep plan stays behind ``REPRO_SIM_EVENT=0`` as the oracle —
every test here that checks values checks them against that twin or
the tree-walking interpreter.
"""

import pytest

from repro.compiler.artifacts import ArtifactStore
from repro.compiler.service import (
    KIND_CODEGEN, KIND_EVENT, CompilerService,
)
from repro.interp import Simulator, TaskHost, VirtualFS
from repro.interp.compile import CompiledModuleCode, resolve_sim_event
from repro.interp.compile.simulator import CompiledSimulator
from repro.verilog import flatten, parse


def build(text, top=None, **kwargs):
    flat = flatten(parse(text), top or parse(text).modules[-1].name)
    return flat


def sim_for(text, top=None, event=None):
    # Pinned at O2: the idle proofs need the gating pass, which the
    # ambient REPRO_OPT_LEVEL=0 CI leg would otherwise strip.
    flat = build(text, top)
    code = CompiledModuleCode(flat, opt_level=2, event=event)
    return CompiledSimulator(flat, TaskHost(VirtualFS()), code=code)


GATED = """
module gated(input wire clock, input wire en);
  reg [31:0] acc = 0;
  always @(posedge clock) begin
    if (en) acc <= acc + 1;
  end
endmodule
"""


class TestModeSelection:
    def test_event_on_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_EVENT", raising=False)
        assert resolve_sim_event() is True
        sim = sim_for(GATED)
        assert sim.code.event_mode
        assert not sim.code.static_mode

    def test_env_zero_restores_static_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_EVENT", "0")
        assert resolve_sim_event() is False
        sim = sim_for(GATED)
        assert not sim.code.event_mode

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_EVENT", "0")
        assert resolve_sim_event(True) is True
        sim = sim_for(GATED, event=True)
        assert sim.code.event_mode

    def test_fifo_designs_withdraw_to_generic(self):
        # An impure assign RHS forces FIFO scheduling; event dispatch
        # must stand down rather than reorder its side effects.
        sim = sim_for("""
            module f(input wire clock);
              integer fd;
              wire [31:0] x;
              assign x = $time;
              reg [31:0] seen;
              always @(posedge clock) seen <= x;
            endmodule
        """, event=True)
        assert sim.code.fifo_mode
        assert not sim.code.event_mode


class TestIdleProof:
    def test_quiescent_gated_tick_runs_no_process_bodies(self):
        sim = sim_for(GATED, event=True)
        sim.set("en", 1)
        sim.tick(cycles=4)
        assert sim.get("acc") == 4
        sim.set("en", 0)
        sim.tick(cycles=1)  # settle the enable drop
        assert sim.is_idle()
        before = sim.stmts_executed
        sim.tick(cycles=1000)
        assert sim.stmts_executed == before  # the idle fast path
        assert sim.time >= 1000
        assert sim.get("acc") == 4

    def test_idle_revoked_when_enable_rises(self):
        sim = sim_for(GATED, event=True)
        sim.set("en", 0)
        sim.tick(cycles=2)
        assert sim.is_idle()
        sim.set("en", 1)
        assert not sim.is_idle()
        sim.tick(cycles=3)
        assert sim.get("acc") == 3

    def test_ungated_clocked_block_never_idles(self):
        sim = sim_for("""
            module free(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """, event=True)
        sim.tick(cycles=2)
        assert not sim.is_idle()

    def test_activity_counts_pending_work(self):
        sim = sim_for(GATED, event=True)
        assert sim.activity() == 0 or sim.activity() >= 0  # well-defined
        sim.set("en", 1)
        # A poked input dirties its slot until the next drain.
        assert isinstance(sim.activity(), int)

    def test_sweep_twin_matches_idle_fast_forward(self):
        fast = sim_for(GATED, event=True)
        slow = sim_for(GATED, event=False)
        for s in (fast, slow):
            s.set("en", 1)
            s.tick(cycles=5)
            s.set("en", 0)
            s.tick(cycles=200)
        assert fast.get("acc") == slow.get("acc") == 5
        assert fast.time == slow.time


class TestNbaShadowQueueActivity:
    """Satellite 1: pending NBA shadow-queue entries are activity.

    The machinify transform stages non-blocking writes in ``__we_*``
    / ``__wn_*`` shadow sites drained on a later machine step, so a
    module can be between-edges quiet while holding writes that land
    next tick.  Quiescence detection must refuse to call that idle —
    a tenant preempted there and fast-forwarded would drop the drain.
    """

    SHADOWED = """
    module shadowed(input wire clock, input wire en, input wire drain);
      reg [31:0] __wn_0 = 0;
      reg [31:0] __wseq = 0;
      reg [31:0] acc = 0;
      always @(posedge clock) begin
        if (en) begin
          __wn_0 <= __wn_0 + 1;
          __wseq <= __wseq + 1;
          acc <= acc + 1;
        end
        if (drain) begin
          __wn_0 <= 0;
          __wseq <= 0;
        end
      end
    endmodule
    """

    def test_shadow_slots_are_tabled_as_activity(self):
        sim = sim_for(self.SHADOWED, event=True)
        layout = sim.code.layout
        assert layout.slot_of["__wn_0"] in sim.code.activity_slots
        assert layout.slot_of["__wseq"] in sim.code.activity_slots
        assert layout.slot_of["acc"] not in sim.code.activity_slots

    def test_machinified_module_tables_real_shadow_sites(self):
        # The genuine article: a loop NBA machinifies into __wqa/__wqd
        # queues with an __wn count and __wc cursor; the transformed
        # module's compiled plan must table every one of them.
        service = CompilerService(ArtifactStore())
        program = service.compile_program("""
            module loopy(input wire clock);
              reg [7:0] mem [0:3];
              integer i;
              always @(posedge clock) begin
                for (i = 0; i < 4; i = i + 1) mem[i] <= i;
              end
            endmodule
        """)
        code = CompiledModuleCode(program.transform.module,
                                  env=program.hardware_env, event=True)
        names = {name for name, slot in code.layout.slot_of.items()
                 if slot in code.activity_slots}
        assert any(n.startswith("__wn_") for n in names)
        assert any(n.startswith("__wc_") for n in names)
        assert "__wseq" in names

    def test_pending_shadow_entry_blocks_idle(self):
        sim = sim_for(self.SHADOWED, event=True)
        sim.set("en", 0)
        sim.set("drain", 0)
        sim.tick(cycles=2)
        assert sim.is_idle()
        sim.set("en", 1)
        sim.tick(cycles=3)
        sim.set("en", 0)
        sim.tick(cycles=1)
        # Gates are low, queues empty — but three staged writes sit in
        # the shadow count.  This exact state used to report idle.
        assert sim.get("__wn_0") == 3
        assert not sim.is_idle()
        sim.set("drain", 1)
        sim.tick(cycles=1)
        sim.set("drain", 0)
        sim.tick(cycles=1)
        assert sim.get("__wn_0") == 0
        assert sim.is_idle()

    def test_preempted_tenant_with_staged_writes_not_fast_forwarded(
            self, monkeypatch):
        # Runtime-level regression: a tenant sliced out while shadow
        # writes are pending must report busy through tick_chunk so the
        # supervisor keeps stepping it instead of warping time past the
        # drain.  Event scheduling and O2 are pinned — the scenario
        # under test only exists with the idle probe armed.
        from repro.runtime.runtime import Runtime

        monkeypatch.setenv("REPRO_SIM_EVENT", "1")
        runtime = Runtime(self.SHADOWED, sim_backend="compiled",
                          opt_level=2)
        runtime.engine.set("en", 0)
        runtime.engine.set("drain", 0)
        report = runtime.tick_chunk(2)
        assert report.idle
        runtime.engine.set("en", 1)
        runtime.tick_chunk(3)
        runtime.engine.set("en", 0)
        report = runtime.tick_chunk(1)
        assert runtime.engine.get("__wn_0") == 3
        assert not report.idle
        assert not runtime.is_idle()
        runtime.engine.set("drain", 1)
        runtime.tick_chunk(1)
        runtime.engine.set("drain", 0)
        report = runtime.tick_chunk(1)
        assert report.idle


class TestCycleDownstreamRemarking:
    """Satellite 3: rank_order collapses cycle members to one trailing
    rank; a ranked process downstream of a cycle member must be
    re-marked when the cycle settles late under activity-set dispatch.
    """

    CYC = """
    module cyc(input wire clock, output wire [7:0] z);
      reg en = 0;
      reg [7:0] d = 0;
      wire [7:0] q;
      assign q = en ? d : q;   // self-loop: latch-shaped cycle member
      assign z = q ^ 8'h55;    // ranked downstream of the cycle
      always @(posedge clock) begin
        en <= ~en;
        d <= d + 3;
      end
    endmodule
    """

    def test_cycle_members_are_trailing_not_heap(self):
        sim = sim_for(self.CYC, event=True)
        code = sim.code
        assert code.event_mode
        # Both the self-looping driver and its downstream reader sit in
        # the trailing fixpoint region; neither may enter the acyclic
        # heap prefix, else a late cycle settle could strand the reader.
        assert len(code.comb_order) == 2
        assert code.event_acyclic == 0

    def test_downstream_of_cycle_tracks_late_settle(self):
        fast = sim_for(self.CYC, event=True)
        oracle = Simulator(build(self.CYC), TaskHost(VirtualFS()),
                           backend="interp")
        for _ in range(12):
            fast.tick(cycles=1)
            oracle.tick(cycles=1)
            assert fast.get("z") == oracle.get("z")
            assert fast.get("q") == oracle.get("q")

    def test_full_state_bit_identical_over_run(self):
        fast = sim_for(self.CYC, event=True)
        slow = sim_for(self.CYC, event=False)
        fast.tick(cycles=40)
        slow.tick(cycles=40)
        assert fast.store.snapshot() == slow.store.snapshot()


class TestRestoreClearsEventState:
    def test_restore_at_quiescence_drops_stale_activity(self):
        sim = sim_for(GATED, event=True)
        sim.set("en", 1)
        sim.tick(cycles=2)
        snap = sim.save_state()
        sim.tick(cycles=5)
        sim.restore_state(snap)
        assert sim.get("acc") == 2
        assert not sim._ev_heap
        assert sim._trail_count == 0
        twin = sim_for(GATED, event=True)
        twin.set("en", 1)
        twin.tick(cycles=2)
        sim.tick(cycles=4)
        twin.tick(cycles=4)
        assert sim.get("acc") == twin.get("acc") == 6


class TestEventArtifactKind:
    def test_event_and_sweep_cache_under_separate_kinds(self):
        service = CompilerService(ArtifactStore())
        program = service.compile_program(GATED)
        ev = service.codegen(program.flat, env=program.env,
                             digest=program.digest, event=True)
        sw = service.codegen(program.flat, env=program.env,
                             digest=program.digest, event=False)
        assert ev is not sw
        assert ev.event_mode and not sw.event_mode
        assert service.codegen(program.flat, env=program.env,
                               digest=program.digest, event=True) is ev
        assert service.codegen(program.flat, env=program.env,
                               digest=program.digest, event=False) is sw
        warmth = service.warmth(program.digest)
        assert warmth["event"] and warmth["codegen"]

    def test_batch_layers_on_the_sweep_plan(self):
        pytest.importorskip("numpy")
        service = CompilerService(ArtifactStore())
        program = service.compile_program("""
            module counter(input wire clock);
              reg [15:0] n;
              wire [15:0] d;
              assign d = n + 16'd1;
              initial n = 0;
              always @(posedge clock) n <= d;
            endmodule
        """)
        # O2 pinned: vector licensing needs the two-state specialized
        # static plan, which the ambient O0 CI leg would deny.
        service.batch(program.flat, env=program.env,
                      digest=program.digest, opt_level=2)
        # The vector emitter licenses against the static sweep plan, so
        # batching a cold digest fills the sweep kind, not the event
        # one.  (Counts, not warmth(): warmth probes the ambient opt
        # level, which CI legs vary.)
        assert service.store.count(KIND_CODEGEN) == 1
        assert service.store.count(KIND_EVENT) == 0


class TestBenchWorkloadIdentity:
    """Every bench workload, event vs sweep, bit-identical."""

    @pytest.mark.parametrize("name,ticks", [
        ("adpcm", 48), ("bitcoin", 16), ("df", 32),
        ("mips32", 48), ("nw", 48), ("regex", 48),
    ])
    def test_workload_identical(self, name, ticks):
        from repro.bench import BENCHMARKS
        from repro.harness.common import bench_vfs

        flat = flatten(parse(BENCHMARKS[name].source()), name)
        runs = {}
        for label, event in (("event", True), ("sweep", False)):
            host = TaskHost(bench_vfs(name, scale=1 << 12))
            code = CompiledModuleCode(flat, event=event)
            sim = CompiledSimulator(flat, host, code=code)
            sim.tick(cycles=ticks)
            runs[label] = (sim.store.snapshot(), list(host.display_log),
                           host.finished, sim.time)
        assert runs["event"] == runs["sweep"]
