"""Parser unit tests: expressions, statements, items, modules."""

import pytest

from repro.verilog import ast, parse, parse_expr, parse_module, parse_stmt
from repro.verilog.parser import ParseError


class TestExpressions:
    def test_precedence_add_mul(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_shift_vs_add(self):
        expr = parse_expr("a << b + c")
        assert expr.op == "<<"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "+"

    def test_precedence_logical(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-" and expr.left.op == "-"
        assert expr.left.right.name == "b"

    def test_power_right_associative(self):
        expr = parse_expr("a ** b ** c")
        assert expr.op == "**"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "**"

    def test_ternary(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.if_false, ast.Ternary)

    def test_unary_chain(self):
        expr = parse_expr("~!x")
        assert expr.op == "~"
        assert expr.operand.op == "!"

    def test_reduction_operators(self):
        for op in ("&", "|", "^", "~&", "~|", "~^"):
            expr = parse_expr(f"{op}x")
            assert isinstance(expr, ast.Unary) and expr.op == op

    def test_unary_plus_is_dropped(self):
        assert isinstance(parse_expr("+x"), ast.Identifier)

    def test_concat(self):
        expr = parse_expr("{a, b, c}")
        assert isinstance(expr, ast.Concat) and len(expr.parts) == 3

    def test_replication(self):
        expr = parse_expr("{4{x}}")
        assert isinstance(expr, ast.Repeat)
        assert expr.count.value == 4

    def test_replication_of_concat(self):
        expr = parse_expr("{2{a, b}}")
        assert isinstance(expr, ast.Repeat)
        assert isinstance(expr.value, ast.Concat)

    def test_bit_select(self):
        expr = parse_expr("mem[3]")
        assert isinstance(expr, ast.Index)

    def test_part_select(self):
        expr = parse_expr("x[7:4]")
        assert isinstance(expr, ast.RangeSelect) and expr.mode == ":"

    def test_indexed_part_select(self):
        up = parse_expr("x[i +: 8]")
        down = parse_expr("x[i -: 8]")
        assert up.mode == "+:" and down.mode == "-:"

    def test_select_of_select(self):
        expr = parse_expr("mem[i][7:0]")
        assert isinstance(expr, ast.RangeSelect)
        assert isinstance(expr.base, ast.Index)

    def test_select_on_parenthesized(self):
        expr = parse_expr("(a + b)[3:0]")
        assert isinstance(expr, ast.RangeSelect)
        assert isinstance(expr.base, ast.Binary)

    def test_system_function_call(self):
        expr = parse_expr("$feof(fd)")
        assert isinstance(expr, ast.SysCall) and expr.name == "$feof"

    def test_system_function_no_args(self):
        expr = parse_expr("$time")
        assert isinstance(expr, ast.SysCall) and expr.args == ()

    def test_string_argument(self):
        expr = parse_expr('$fopen("path/to/file")')
        assert isinstance(expr.args[0], ast.String)

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expr("a + b extra")


class TestStatements:
    def test_blocking_assign(self):
        stmt = parse_stmt("x = y + 1;")
        assert isinstance(stmt, ast.Assign) and stmt.blocking

    def test_nonblocking_assign(self):
        stmt = parse_stmt("x <= y;")
        assert isinstance(stmt, ast.Assign) and not stmt.blocking

    def test_lvalue_concat(self):
        stmt = parse_stmt("{a, b} = c;")
        assert isinstance(stmt.lhs, ast.Concat)

    def test_lvalue_memory_element(self):
        stmt = parse_stmt("mem[addr] <= data;")
        assert isinstance(stmt.lhs, ast.Index)

    def test_if_else(self):
        stmt = parse_stmt("if (a) x = 1; else x = 0;")
        assert isinstance(stmt, ast.If) and stmt.else_stmt is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.else_stmt is None
        assert stmt.then_stmt.else_stmt is not None

    def test_begin_end_block(self):
        stmt = parse_stmt("begin x = 1; y = 2; end")
        assert isinstance(stmt, ast.Block) and len(stmt.stmts) == 2

    def test_named_block(self):
        stmt = parse_stmt("begin : blk x = 1; end")
        assert stmt.name == "blk"

    def test_fork_join(self):
        stmt = parse_stmt("fork x = 1; y = 2; join")
        assert isinstance(stmt, ast.ForkJoin) and len(stmt.stmts) == 2

    def test_case(self):
        stmt = parse_stmt("""
            case (op)
              2'd0: x = a;
              2'd1, 2'd2: x = b;
              default: x = 0;
            endcase
        """)
        assert isinstance(stmt, ast.Case)
        assert len(stmt.items) == 3
        assert len(stmt.items[1].labels) == 2
        assert stmt.items[2].labels == ()

    def test_casez(self):
        stmt = parse_stmt("casez (x) 4'b1???: y = 1; endcase")
        assert stmt.kind == "casez"
        assert stmt.items[0].labels[0].xz_mask == 0b0111

    def test_empty_case_arm(self):
        stmt = parse_stmt("case (x) 1: ; default: ; endcase")
        assert stmt.items[0].stmt is None

    def test_for_loop(self):
        stmt = parse_stmt("for (i = 0; i < 8; i = i + 1) x = x + i;")
        assert isinstance(stmt, ast.For)

    def test_while_loop(self):
        stmt = parse_stmt("while (x < 10) x = x + 1;")
        assert isinstance(stmt, ast.While)

    def test_repeat(self):
        stmt = parse_stmt("repeat (4) x = x << 1;")
        assert isinstance(stmt, ast.RepeatStmt)

    def test_system_task(self):
        stmt = parse_stmt('$display("%d", x);')
        assert isinstance(stmt, ast.SysTask) and stmt.name == "$display"

    def test_system_task_no_args(self):
        stmt = parse_stmt("$finish;")
        assert stmt.args == ()

    def test_null_statement(self):
        assert isinstance(parse_stmt(";"), ast.NullStmt)

    def test_delay_statement(self):
        stmt = parse_stmt("#10 x = 1;")
        assert isinstance(stmt, ast.DelayStmt)
        assert isinstance(stmt.stmt, ast.Assign)

    def test_le_in_expression_context_is_comparison(self):
        stmt = parse_stmt("if (a <= b) x = 1;")
        assert stmt.cond.op == "<="


class TestModules:
    def test_ansi_ports(self):
        mod = parse_module("""
            module m(input wire clk, output reg [7:0] q);
            endmodule
        """)
        assert mod.ports == ("clk", "q")
        q = mod.decl("q")
        assert q.kind == "reg" and q.direction == "output"

    def test_classic_ports(self):
        mod = parse_module("""
            module m(clk, q);
              input wire clk;
              output reg [7:0] q;
            endmodule
        """)
        assert mod.ports == ("clk", "q")
        assert mod.decl("q").direction == "output"

    def test_parameter_header(self):
        mod = parse_module("module m #(parameter W = 8)(input wire [W-1:0] a); endmodule")
        assert mod.decl("W").kind == "parameter"

    def test_localparam(self):
        mod = parse_module("module m(); localparam X = 5; endmodule")
        assert mod.decl("X").kind == "localparam"

    def test_memory_declaration(self):
        mod = parse_module("module m(); reg [31:0] mem [0:1023]; endmodule")
        decl = mod.decl("mem")
        assert len(decl.unpacked) == 1

    def test_integer_is_32bit_signed(self):
        mod = parse_module("module m(); integer i; endmodule")
        decl = mod.decl("i")
        assert decl.kind == "integer" and decl.signed

    def test_wire_with_initializer(self):
        mod = parse_module("module m(); wire [3:0] x = 4'hA; endmodule")
        assert mod.decl("x").init is not None

    def test_multiple_declarators(self):
        mod = parse_module("module m(); reg a, b, c; endmodule")
        assert all(mod.decl(n) is not None for n in "abc")

    def test_attribute_on_declaration(self):
        mod = parse_module("module m(); (* non_volatile *) reg [31:0] x; endmodule")
        assert mod.decl("x").has_attribute("non_volatile")

    def test_continuous_assign(self):
        mod = parse_module("module m(); wire y; assign y = 1; endmodule")
        assert any(isinstance(i, ast.ContinuousAssign) for i in mod.items)

    def test_always_posedge(self):
        mod = parse_module("module m(input wire c); always @(posedge c) ; endmodule")
        always = [i for i in mod.items if isinstance(i, ast.Always)][0]
        assert always.sensitivity[0].edge == "posedge"

    def test_always_multiple_events(self):
        mod = parse_module(
            "module m(input wire c, r); always @(posedge c or negedge r) ; endmodule"
        )
        always = [i for i in mod.items if isinstance(i, ast.Always)][0]
        assert len(always.sensitivity) == 2
        assert always.sensitivity[1].edge == "negedge"

    def test_always_star(self):
        mod = parse_module("module m(); reg y; always @(*) y = 1; endmodule")
        always = [i for i in mod.items if isinstance(i, ast.Always)][0]
        assert always.sensitivity == ast.STAR

    def test_initial_block(self):
        mod = parse_module("module m(); reg x; initial x = 1; endmodule")
        assert any(isinstance(i, ast.Initial) for i in mod.items)

    def test_instance_named_ports(self):
        src = parse("""
            module child(input wire a, output wire b); endmodule
            module top(); wire x, y; child c(.a(x), .b(y)); endmodule
        """)
        inst = src.module("top").instances()[0]
        assert inst.module == "child"
        assert inst.ports[0].name == "a"

    def test_instance_positional_ports(self):
        src = parse("""
            module child(input wire a); endmodule
            module top(); wire x; child c(x); endmodule
        """)
        inst = src.module("top").instances()[0]
        assert inst.ports[0].name is None

    def test_instance_parameters(self):
        src = parse("""
            module child #(parameter W = 1)(input wire [W-1:0] a); endmodule
            module top(); wire [7:0] x; child #(.W(8)) c(.a(x)); endmodule
        """)
        inst = src.module("top").instances()[0]
        assert inst.params[0].name == "W"

    def test_multiple_modules(self):
        src = parse("module a(); endmodule module b(); endmodule")
        assert src.module_names() == ["a", "b"]

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_module("module m() endmodule")

    def test_unclosed_module_raises(self):
        with pytest.raises(ParseError):
            parse_module("module m(); reg x;")
