"""Width inference and constant evaluation tests (LRM §5.4 rules)."""

import pytest

from repro.verilog import WidthEnv, WidthError, const_eval, mask, parse_expr, parse_module, to_signed

MOD = parse_module("""
module m(input wire clock);
  parameter W = 16;
  localparam HALF = W / 2;
  wire [7:0] a;
  wire [15:0] b;
  reg signed [7:0] s;
  reg [31:0] mem [0:63];
  reg [3:0] nib;
  integer i;
  wire one;
endmodule
""")


@pytest.fixture(scope="module")
def env():
    return WidthEnv(MOD)


class TestHelpers:
    def test_mask(self):
        assert mask(0x1FF, 8) == 0xFF
        assert mask(-1, 4) == 0xF

    def test_to_signed(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127
        assert to_signed(0, 8) == 0


class TestConstEval:
    def test_arithmetic(self):
        assert const_eval(parse_expr("3 + 4 * 2")) == 11

    def test_parameters(self):
        assert const_eval(parse_expr("W - 1"), {"W": 16}) == 15

    def test_ternary(self):
        assert const_eval(parse_expr("1 ? 10 : 20")) == 10

    def test_shifts(self):
        assert const_eval(parse_expr("1 << 10")) == 1024

    def test_comparison(self):
        assert const_eval(parse_expr("3 < 5")) == 1

    def test_clog2(self):
        assert const_eval(parse_expr("$clog2(1024)")) == 10
        assert const_eval(parse_expr("$clog2(1025)")) == 11

    def test_non_constant_raises(self):
        with pytest.raises(WidthError):
            const_eval(parse_expr("x + 1"))


class TestSignalTable:
    def test_params_resolved(self, env):
        assert env.params["W"] == 16
        assert env.params["HALF"] == 8

    def test_widths(self, env):
        assert env.signal("a").width == 8
        assert env.signal("b").width == 16
        assert env.signal("one").width == 1

    def test_memory(self, env):
        mem = env.signal("mem")
        assert mem.is_memory and mem.depth == 64 and mem.width == 32

    def test_integer(self, env):
        sig = env.signal("i")
        assert sig.width == 32 and sig.signed

    def test_state_kinds(self, env):
        assert env.signal("s").is_state
        assert not env.signal("a").is_state

    def test_unknown_raises(self, env):
        with pytest.raises(WidthError):
            env.signal("nope")


class TestExprWidths:
    def test_identifier(self, env):
        assert env.width_of(parse_expr("a")) == 8

    def test_unsized_literal_is_32(self, env):
        assert env.width_of(parse_expr("42")) == 32

    def test_sized_literal(self, env):
        assert env.width_of(parse_expr("4'hF")) == 4

    def test_binary_max_rule(self, env):
        assert env.width_of(parse_expr("a + b")) == 16

    def test_comparison_is_one_bit(self, env):
        assert env.width_of(parse_expr("a == b")) == 1
        assert env.width_of(parse_expr("a < b")) == 1

    def test_logical_is_one_bit(self, env):
        assert env.width_of(parse_expr("a && b")) == 1

    def test_shift_takes_left_width(self, env):
        assert env.width_of(parse_expr("a << b")) == 8

    def test_concat_sums(self, env):
        assert env.width_of(parse_expr("{a, b, nib}")) == 28

    def test_replication(self, env):
        assert env.width_of(parse_expr("{3{a}}")) == 24

    def test_bit_select_is_one(self, env):
        assert env.width_of(parse_expr("b[3]")) == 1

    def test_memory_element_width(self, env):
        assert env.width_of(parse_expr("mem[5]")) == 32

    def test_part_select(self, env):
        assert env.width_of(parse_expr("b[11:4]")) == 8

    def test_indexed_part_select(self, env):
        assert env.width_of(parse_expr("b[i +: 4]")) == 4

    def test_reduction_is_one_bit(self, env):
        assert env.width_of(parse_expr("&b")) == 1

    def test_not_is_one_bit(self, env):
        assert env.width_of(parse_expr("!b")) == 1

    def test_invert_keeps_width(self, env):
        assert env.width_of(parse_expr("~b")) == 16

    def test_ternary_max_of_branches(self, env):
        assert env.width_of(parse_expr("one ? a : b")) == 16

    def test_sysfunc_widths(self, env):
        assert env.width_of(parse_expr("$time")) == 64
        assert env.width_of(parse_expr("$random")) == 32
        assert env.width_of(parse_expr("$signed(a)")) == 8


class TestSignedness:
    def test_signed_identifier(self, env):
        assert env.is_signed(parse_expr("s"))
        assert not env.is_signed(parse_expr("a"))

    def test_signed_call(self, env):
        assert env.is_signed(parse_expr("$signed(a)"))

    def test_mixed_arithmetic_unsigned(self, env):
        assert not env.is_signed(parse_expr("s + a"))

    def test_signed_propagates_through_negation(self, env):
        assert env.is_signed(parse_expr("-s"))
