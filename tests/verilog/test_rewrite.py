"""AST rewriting utility tests."""

from repro.verilog import ast, parse_expr, parse_stmt, print_expr, print_stmt
from repro.verilog.rewrite import (
    collect_identifiers,
    lvalue_targets,
    map_expr,
    rename_expr,
    rename_stmt,
    stmt_identifiers,
    substitute_expr,
)


class TestMapExpr:
    def test_identity_preserves_structure(self):
        expr = parse_expr("a + b[3:0] * {c, d}")
        out = map_expr(expr, lambda e: e)
        assert print_expr(out) == print_expr(expr)

    def test_bottom_up_transform(self):
        expr = parse_expr("x + x")

        def double(node):
            if isinstance(node, ast.Number):
                return ast.Number(node.value * 2)
            return node

        out = map_expr(parse_expr("1 + 2"), double)
        assert print_expr(out) == "(2 + 4)"


class TestRename:
    def test_rename_expr(self):
        expr = parse_expr("a + b * a")
        out = rename_expr(expr, {"a": "z"})
        assert collect_identifiers(out) == {"z", "b"}

    def test_rename_stmt_recurses(self):
        stmt = parse_stmt("if (a) begin b = a + 1; end else c[a] = 0;")
        out = rename_stmt(stmt, {"a": "q"})
        assert "a" not in stmt_identifiers(out)
        assert "q" in stmt_identifiers(out)

    def test_rename_misses_are_noops(self):
        expr = parse_expr("a + b")
        out = rename_expr(expr, {"zz": "yy"})
        assert print_expr(out) == print_expr(expr)


class TestSubstitute:
    def test_substitute_expression(self):
        expr = parse_expr("a + 1")
        out = substitute_expr(expr, {"a": parse_expr("b * c")})
        assert print_expr(out) == "((b * c) + 1)"


class TestCollectors:
    def test_collect_identifiers(self):
        assert collect_identifiers(parse_expr("a[i] + {b, 3'd2}")) == {"a", "i", "b"}

    def test_stmt_identifiers_cover_all_positions(self):
        stmt = parse_stmt("for (i = lo; i < hi; i = i + step) mem[i] <= val;")
        names = stmt_identifiers(stmt)
        assert names == {"i", "lo", "hi", "step", "mem", "val"}

    def test_case_labels_collected(self):
        stmt = parse_stmt("case (sel) A: x = 1; B: x = 2; endcase")
        assert {"sel", "A", "B", "x"} <= stmt_identifiers(stmt)


class TestLvalues:
    def test_identifier(self):
        assert lvalue_targets(parse_expr("x")) == ["x"]

    def test_select(self):
        assert lvalue_targets(parse_expr("mem[3]")) == ["mem"]
        assert lvalue_targets(parse_expr("x[7:0]")) == ["x"]

    def test_concat(self):
        assert lvalue_targets(parse_expr("{a, b[1], c[3:0]}")) == ["a", "b", "c"]
