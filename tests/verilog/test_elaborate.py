"""Hierarchy flattening and parameter specialization tests."""

import pytest

from repro.verilog import ElaborationError, WidthEnv, flatten, instance_tree, parse
from repro.verilog import ast


def flat(src_text, top):
    return flatten(parse(src_text), top)


class TestFlatten:
    SRC = """
        module leaf(input wire clk, input wire [3:0] a, output wire [3:0] b);
          reg [3:0] r = 0;
          always @(posedge clk) r <= a;
          assign b = r;
        endmodule
        module top(input wire clk, output wire [3:0] out);
          wire [3:0] x = 4'h5;
          leaf u(.clk(clk), .a(x), .b(out));
        endmodule
    """

    def test_no_instances_remain(self):
        mod = flat(self.SRC, "top")
        assert not mod.instances()

    def test_child_names_prefixed(self):
        mod = flat(self.SRC, "top")
        assert mod.decl("u$r") is not None

    def test_input_binding_becomes_assign(self):
        mod = flat(self.SRC, "top")
        assigns = [i for i in mod.items if isinstance(i, ast.ContinuousAssign)]
        targets = {a.lhs.name for a in assigns if isinstance(a.lhs, ast.Identifier)}
        assert "u$clk" in targets and "u$a" in targets

    def test_output_binding_direction(self):
        mod = flat(self.SRC, "top")
        assigns = [i for i in mod.items if isinstance(i, ast.ContinuousAssign)]
        out = [a for a in assigns
               if isinstance(a.lhs, ast.Identifier) and a.lhs.name == "out"]
        assert out and out[0].rhs.name == "u$b"

    def test_ports_lose_direction_when_inlined(self):
        mod = flat(self.SRC, "top")
        assert mod.decl("u$a").direction is None

    def test_top_ports_keep_direction(self):
        mod = flat(self.SRC, "top")
        assert mod.decl("clk").direction == "input"


class TestParameters:
    SRC = """
        module adder #(parameter W = 4)(input wire [W-1:0] a, output wire [W-1:0] y);
          localparam TOP = W - 1;
          assign y = a + 1;
        endmodule
        module top(input wire [7:0] p, output wire [7:0] q, output wire [3:0] r);
          wire [3:0] small_in = 4'h1;
          adder #(.W(8)) big(.a(p), .y(q));
          adder small(.a(small_in), .y(r));
        endmodule
    """

    def test_specialized_twice(self):
        mod = flat(self.SRC, "top")
        env = WidthEnv(mod)
        assert env.signal("big$a").width == 8
        assert env.signal("small$a").width == 4

    def test_parameter_decls_removed(self):
        mod = flat(self.SRC, "top")
        assert mod.decl("big$W") is None

    def test_positional_param_override(self):
        src = """
            module c #(parameter W = 2)(input wire [W-1:0] a); endmodule
            module t(); wire [5:0] x; c #(6) u(.a(x)); endmodule
        """
        env = WidthEnv(flat(src, "t"))
        assert env.signal("u$a").width == 6

    def test_param_expression_in_parent_scope(self):
        src = """
            module c #(parameter W = 2)(input wire [W-1:0] a); endmodule
            module t #(parameter P = 3)();
              wire [2*3-1:0] x;
              c #(.W(P * 2)) u(.a(x));
            endmodule
        """
        env = WidthEnv(flat(src, "t"))
        assert env.signal("u$a").width == 6


class TestNesting:
    def test_two_levels(self):
        src = """
            module inner(input wire x); endmodule
            module middle(input wire y); inner i(.x(y)); endmodule
            module outer(input wire z); middle m(.y(z)); endmodule
        """
        mod = flat(src, "outer")
        assert mod.decl("m$i$x") is not None

    def test_instance_tree(self):
        src = """
            module inner(); endmodule
            module middle(); inner i(); endmodule
            module outer(); middle m(); middle n(); endmodule
        """
        tree = instance_tree(parse(src), "outer")
        assert tree["m"] == "middle"
        assert tree["m$i"] == "inner"
        assert tree["n$i"] == "inner"

    def test_recursion_guard(self):
        src = "module a(); a x(); endmodule"
        with pytest.raises(ElaborationError):
            flat(src, "a")


class TestErrors:
    def test_unknown_module(self):
        with pytest.raises(ElaborationError):
            flat("module t(); ghost g(); endmodule", "t")

    def test_unknown_port(self):
        src = """
            module c(input wire a); endmodule
            module t(); wire w; c u(.nope(w)); endmodule
        """
        with pytest.raises(ElaborationError):
            flat(src, "t")

    def test_mixed_connection_styles(self):
        src = """
            module c(input wire a, input wire b); endmodule
            module t(); wire w; c u(w, .b(w)); endmodule
        """
        with pytest.raises(ElaborationError):
            flat(src, "t")

    def test_unconnected_port_ok(self):
        src = """
            module c(input wire a, input wire b); endmodule
            module t(); wire w; c u(.a(w), .b()); endmodule
        """
        mod = flat(src, "t")
        assert mod.decl("u$b") is not None  # declared, just undriven
