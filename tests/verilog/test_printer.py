"""Printer tests: determinism and parse∘print round-tripping."""

from repro.verilog import (
    parse_expr, parse_module, parse_stmt, print_expr, print_module, print_stmt,
)

EXPRS = [
    "a + b * c",
    "(a - b) - c",
    "a ? b : c",
    "{a, b, {2{c}}}",
    "~(&x)",
    "mem[i]",
    "x[7:4]",
    "y[i +: 8]",
    "$feof(fd)",
    '"hello"',
    "8'hff",
    "a <= b",
    "(x >> 2) & 32'hf0f0f0f0",
]

STMTS = [
    "x = y + 1;",
    "x <= {a, b};",
    "if (a) x = 1; else x = 0;",
    "begin x = 1; y = 2; end",
    "fork x = 1; y = 2; join",
    "case (op) 0: x = a; default: x = 0; endcase",
    "casez (op) 4'b1???: x = 1; endcase",
    "for (i = 0; i < 8; i = i + 1) acc = acc + i;",
    "while (!done) count = count + 1;",
    "repeat (3) x = x << 1;",
    '$display("%0d", total);',
    "$finish;",
    ";",
]

MODULE = """
module m #(parameter W = 8)(input wire clock, output wire [W-1:0] out);
  (* non_volatile *) reg [W-1:0] acc = 0;
  reg [7:0] mem [0:15];
  wire t = acc[0];
  always @(posedge clock) begin : body
    if (t)
      acc <= acc + 1;
    else
      mem[acc[3:0]] <= acc;
  end
  always @(*) ;
  initial acc = 1;
  assign out = acc;
endmodule
"""


class TestExprRoundTrip:
    def test_exprs_roundtrip(self):
        for text in EXPRS:
            expr = parse_expr(text)
            printed = print_expr(expr)
            reparsed = parse_expr(printed)
            assert print_expr(reparsed) == printed, text

    def test_printing_is_deterministic(self):
        for text in EXPRS:
            expr = parse_expr(text)
            assert print_expr(expr) == print_expr(expr)


class TestStmtRoundTrip:
    def test_stmts_roundtrip(self):
        for text in STMTS:
            stmt = parse_stmt(text)
            printed = "\n".join(print_stmt(stmt))
            reparsed = parse_stmt(printed)
            assert "\n".join(print_stmt(reparsed)) == printed, text


class TestModuleRoundTrip:
    def test_module_roundtrip_fixpoint(self):
        mod = parse_module(MODULE)
        printed = print_module(mod)
        reparsed = parse_module(printed)
        assert print_module(reparsed) == printed

    def test_attributes_survive(self):
        mod = parse_module(MODULE)
        reparsed = parse_module(print_module(mod))
        assert reparsed.decl("acc").has_attribute("non_volatile")

    def test_ports_preserved(self):
        mod = parse_module(MODULE)
        reparsed = parse_module(print_module(mod))
        assert reparsed.ports == mod.ports

    def test_memory_dims_preserved(self):
        mod = parse_module(MODULE)
        reparsed = parse_module(print_module(mod))
        assert len(reparsed.decl("mem").unpacked) == 1
