"""Tokenizer unit tests."""

import pytest

from repro.verilog.lexer import LexError, Preprocessor, parse_based_literal, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text) if t.kind != "EOF"]


def texts(text):
    return [t.text for t in tokenize(text) if t.kind != "EOF"]


class TestBasicTokens:
    def test_identifiers(self):
        assert kinds("foo _bar baz_9 a$b") == ["ID"] * 4

    def test_keywords(self):
        assert kinds("module endmodule wire reg") == ["KEYWORD"] * 4

    def test_keyword_prefix_is_identifier(self):
        # 'modulex' must not lex as keyword + x.
        toks = tokenize("modulex")
        assert toks[0].kind == "ID" and toks[0].text == "modulex"

    def test_system_identifiers(self):
        toks = tokenize("$display $fopen")
        assert [t.kind for t in toks[:2]] == ["SYSID", "SYSID"]
        assert toks[0].text == "$display"

    def test_escaped_identifier(self):
        toks = tokenize(r"\my+weird+name rest")
        assert toks[0].kind == "ID"
        assert toks[0].text == "my+weird+name"
        assert toks[1].text == "rest"

    def test_decimal_numbers(self):
        assert texts("42 1_000") == ["42", "1_000"]

    def test_based_literals(self):
        toks = tokenize("8'hFF 4'b1010 32'd7 'h10")
        assert all(t.kind == "BASEDNUM" for t in toks[:4])

    def test_strings_with_escapes(self):
        toks = tokenize(r'"a\nb" "q\"uote"')
        assert toks[0].text == "a\nb"
        assert toks[1].text == 'q"uote'

    def test_multichar_operators_longest_match(self):
        assert texts("<<< >>> === !== <= >= && || << >>") == [
            "<<<", ">>>", "===", "!==", "<=", ">=", "&&", "||", "<<", ">>",
        ]

    def test_attribute_markers(self):
        toks = tokenize("(* non_volatile *) reg x;")
        assert toks[0].kind == "ATTR_OPEN"
        assert toks[1].text == "non_volatile"
        assert toks[2].kind == "ATTR_CLOSE"

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("module `")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_block_comment_preserves_line_numbers(self):
        toks = tokenize("/* one\ntwo */\nfoo")
        assert toks[0].pos.line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_comment_markers_inside_strings(self):
        toks = tokenize('"no // comment" x')
        assert toks[0].kind == "STRING"
        assert toks[0].text == "no // comment"


class TestPreprocessor:
    def test_define_and_use(self):
        out = Preprocessor().process("`define WIDTH 8\nreg [`WIDTH-1:0] x;")
        assert "reg [8-1:0] x;" in out

    def test_nested_macro_expansion(self):
        pre = Preprocessor()
        out = pre.process("`define A `B\n`define B 5\nwire w = `A;")
        assert "wire w = 5;" in out

    def test_undef(self):
        out = Preprocessor().process("`define X 1\n`undef X\n`X")
        assert "`X" in out

    def test_ifdef_taken(self):
        out = Preprocessor().process(
            "`define F\n`ifdef F\nyes\n`else\nno\n`endif"
        )
        assert "yes" in out and "no" not in out

    def test_ifndef(self):
        out = Preprocessor().process("`ifndef MISSING\nyes\n`endif")
        assert "yes" in out

    def test_ifdef_else_branch(self):
        out = Preprocessor().process("`ifdef MISSING\nyes\n`else\nno\n`endif")
        assert "no" in out and "yes" not in out

    def test_timescale_ignored(self):
        out = Preprocessor().process("`timescale 1ns/1ps\nmodule m;")
        assert "module m;" in out and "timescale" not in out

    def test_initial_defines_parameter(self):
        pre = Preprocessor({"EXT": "123"})
        assert "123" in pre.process("x = `EXT;")


class TestBasedLiteralDecoding:
    def test_hex(self):
        assert parse_based_literal("8'hFF") == (8, False, "h", 0xFF, 0)

    def test_signed_marker(self):
        width, signed, base, value, xz = parse_based_literal("4'sb1010")
        assert signed and width == 4 and value == 0b1010

    def test_width_truncation(self):
        assert parse_based_literal("4'hFF")[3] == 0xF

    def test_underscores(self):
        assert parse_based_literal("16'hAB_CD")[3] == 0xABCD

    def test_dontcare_mask_binary(self):
        width, _, _, value, xz = parse_based_literal("4'b1?0?")
        assert value == 0b1000
        assert xz == 0b0101

    def test_dontcare_mask_hex(self):
        _, _, _, value, xz = parse_based_literal("8'h?F")
        assert value == 0x0F
        assert xz == 0xF0

    def test_unsized(self):
        width, _, base, value, _ = parse_based_literal("'d42")
        assert width is None and value == 42
