"""Performance model and timeline tests."""

import pytest

from repro.core import compile_program
from repro.fabric import DE10, F1
from repro.perf import (
    HwProfile, Series, format_series, profile_hardware, profile_software,
)

COUNTER = """
module counter(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""


class TestProfiles:
    def test_counter_hits_three_cycle_floor(self):
        program = compile_program(COUNTER)
        profile = profile_hardware(program, DE10, ticks=16)
        assert profile.cycles_per_tick == 3.0
        assert profile.traps == 0

    def test_virtual_hz_is_clock_over_cycles(self):
        program = compile_program(COUNTER)
        profile = profile_hardware(program, DE10, ticks=16)
        assert profile.virtual_hz == pytest.approx(profile.clock_hz / 3.0)

    def test_f1_faster_than_de10(self):
        program = compile_program(COUNTER)
        de10 = profile_hardware(program, DE10, ticks=8)
        f1 = profile_hardware(program, F1, ticks=8)
        assert f1.virtual_hz > de10.virtual_hz

    def test_at_clock_rescales(self):
        profile = HwProfile("f1", 250e6, 10, 30, 0, 0, 0.0)
        half = profile.at_clock(125e6)
        assert half.virtual_hz == pytest.approx(profile.virtual_hz / 2)

    def test_software_profile(self):
        program = compile_program(COUNTER)
        profile = profile_software(program, ticks=8)
        assert profile.ticks == 8
        assert 0 < profile.virtual_hz < 1e6


class TestSeries:
    def test_phases_and_lookup(self):
        series = Series("s", "u").phase(0, 10, 5.0).phase(10, 20, 7.0)
        assert series.value_at(5) == 5.0
        assert series.value_at(15) == 7.0
        assert series.value_at(25) is None
        assert series.t_end == 20

    def test_ramp_is_monotone_geometric(self):
        series = Series("s", "u").phase(0, 10, 100.0, ramp_to=1000.0)
        values = [series.value_at(t) for t in (1, 4, 7, 9.5)]
        assert values == sorted(values)
        assert values[0] > 100.0 and values[-1] < 1000.0

    def test_ramp_from_zero(self):
        series = Series("s", "u").phase(0, 10, 0.0, ramp_to=100.0)
        assert series.value_at(5) == pytest.approx(50.0)

    def test_sampling(self):
        series = Series("s", "u").phase(0, 4, 2.0)
        points = series.sample(dt=1.0)
        assert points[0] == (0.0, 2.0)
        assert len(points) == 5

    def test_mean_between(self):
        series = Series("s", "u").phase(0, 10, 4.0)
        assert series.mean_between(2, 8) == pytest.approx(4.0)

    def test_format_series_renders_columns(self):
        a = Series("alpha", "x/s").phase(0, 4, 1.0)
        b = Series("beta", "y/s").phase(2, 4, 2.0)
        text = format_series([a, b], dt=2.0)
        assert "alpha" in text and "beta" in text
        assert "-" in text  # beta undefined at t=0
