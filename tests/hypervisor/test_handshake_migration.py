"""State-safe handshake (Figure 7) and migration orchestration tests."""

import pytest

from repro.core import compile_program
from repro.fabric import DE10, F1, BitstreamCompiler, SimulatedBoard, SynthOptions
from repro.hypervisor import migrate, resume, state_safe_reprogram, suspend
from repro.runtime import DirectBoardBackend, Runtime

COUNTER = """
module counter(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""


def programmed_board(program):
    compiler = BitstreamCompiler(DE10, SynthOptions())
    bitstream = compiler.compile(program.transform.module, program.hardware_text)
    board = SimulatedBoard(DE10)
    board.program(bitstream, {1: program})
    return board, bitstream


class TestHandshake:
    def test_state_survives_reprogram(self):
        program = compile_program(COUNTER)
        board, bitstream = programmed_board(program)
        board.run_ticks(1, "clock", 6)
        report = state_safe_reprogram(board, bitstream, {1: program})
        assert board.get_var(1, "n") == 6
        assert report.engines_paused == 1
        assert report.bits_saved > 0

    def test_retired_engine_dropped(self):
        program = compile_program(COUNTER)
        board, bitstream = programmed_board(program)
        board.run_ticks(1, "clock", 3)
        # Reprogram WITHOUT engine 1: its state is discarded.
        report = state_safe_reprogram(board, bitstream, {2: program})
        assert 1 not in board.slots
        assert board.get_var(2, "n") == 0
        assert report.engines_paused == 0

    def test_capture_set_narrows_transfer(self):
        program = compile_program(COUNTER)
        board, bitstream = programmed_board(program)
        board.run_ticks(1, "clock", 2)
        full = state_safe_reprogram(board, bitstream, {1: program})
        narrow = state_safe_reprogram(
            board, bitstream, {1: program}, capture_sets={1: ["n"]}
        )
        assert narrow.bits_saved < full.bits_saved
        assert narrow.total_seconds < full.total_seconds

    def test_new_engine_powers_up_fresh(self):
        program = compile_program(COUNTER)
        board, bitstream = programmed_board(program)
        board.run_ticks(1, "clock", 4)
        state_safe_reprogram(board, bitstream, {1: program, 2: program})
        assert board.get_var(1, "n") == 4
        assert board.get_var(2, "n") == 0


class TestMigration:
    def hardware_runtime(self, device):
        runtime = Runtime(COUNTER)
        runtime.attach(DirectBoardBackend(device))
        runtime._hw_ready_at = runtime.sim_time
        runtime.tick(1)
        return runtime

    def test_suspend_charges_time(self):
        runtime = self.hardware_runtime(DE10)
        runtime.tick(5)
        t0 = runtime.sim_time
        context = suspend(runtime)
        assert runtime.sim_time > t0
        assert context.state["n"] == 6

    def test_migrate_moves_execution(self):
        src_rt = self.hardware_runtime(DE10)
        src_rt.tick(7)
        dst_rt = self.hardware_runtime(F1)
        report = migrate(src_rt, dst_rt)
        assert report.state_bits == src_rt.program.state.total_bits
        dst_rt.tick(2)
        assert dst_rt.engine.get("n") == 10

    def test_migration_report_latency_components(self):
        src_rt = self.hardware_runtime(DE10)
        src_rt.tick(3)
        dst_rt = self.hardware_runtime(F1)
        report = migrate(src_rt, dst_rt)
        assert report.suspend_seconds > 0
        assert report.resume_seconds > report.suspend_seconds  # reconfig
        assert report.total_seconds == pytest.approx(
            report.suspend_seconds + report.resume_seconds
        )

    def test_resume_into_software_runtime(self):
        src_rt = self.hardware_runtime(DE10)
        src_rt.tick(4)
        context = suspend(src_rt)
        sw_rt = Runtime(COUNTER)
        resume(sw_rt, context)
        sw_rt.tick(1)
        assert sw_rt.engine.get("n") == 6
