"""Supervised recovery: checkpoints, quarantine, restore, replay."""

import dataclasses

import pytest

from repro.compiler.service import CompilerService
from repro.fabric import DE10, BoardDeadError, FaultPlan, PersistentFabricError
from repro.hypervisor import (
    Checkpoint,
    CheckpointRing,
    Hypervisor,
    Supervisor,
)
from repro.runtime.runtime import Context

#: DE10 with a fast compile/reconfig so tenants reach hardware within a
#: test-sized run (the reliability machinery is compile-latency-agnostic).
FAST = dataclasses.replace(DE10, compile_seconds=0.5, reconfig_seconds=0.01)

APP = """
module app(input wire clock);
  reg [31:0] n;
  initial n = 0;
  always @(posedge clock) begin
    n <= n + 1;
    if (n % 7 == 0) $display("n=%0d", n);
    if (n == 40) $finish;
  end
endmodule
"""


def fleet(service, n=2, specs=()):
    hypervisors = [Hypervisor(FAST, compiler=service) for _ in range(n)]
    for hv, spec in zip(hypervisors, specs):
        if spec:
            hv.board.faults = FaultPlan(spec, seed=1)
    return hypervisors


@pytest.fixture(scope="module")
def service():
    """Shared artifact store: restores are digest-keyed cache hits."""
    svc = CompilerService()
    # Warm the store so every test's tenant reaches hardware quickly.
    sup = Supervisor(fleet(svc))
    sup.admit("warmup", APP)
    sup.run("warmup", 60)
    return svc


@pytest.fixture(scope="module")
def reference(service):
    """Display log and final state of a fault-free supervised run."""
    sup = Supervisor(fleet(service))
    tenant = sup.admit("app", APP)
    sup.run("app", 60)
    assert tenant.runtime.mode == "hardware"
    return (list(tenant.runtime.host.display_log),
            tenant.runtime.engine.get("n"),
            tenant.runtime.finished)


def outcome(tenant):
    return (list(tenant.runtime.host.display_log),
            tenant.runtime.engine.get("n"),
            tenant.runtime.finished)


class TestCheckpointRing:
    def _checkpoint(self, engine_id, ticks):
        context = Context(program_source="", state={}, vfs_state={},
                          vfs_files={}, ticks=ticks)
        return Checkpoint(engine_id=engine_id, digest="d", ticks=ticks,
                          sim_time=float(ticks), context=context)

    def test_bounded_eviction_oldest_first(self):
        ring = CheckpointRing(depth=3)
        for t in range(5):
            ring.push(self._checkpoint(1, t))
        held = ring.history(1)
        assert [cp.ticks for cp in held] == [2, 3, 4]
        assert ring.latest(1).ticks == 4
        assert ring.stats() == {"engines": 1, "held": 3,
                                "saved": 5, "evicted": 2}

    def test_rings_are_per_engine(self):
        ring = CheckpointRing(depth=2)
        ring.push(self._checkpoint(1, 10))
        ring.push(self._checkpoint(2, 20))
        assert ring.latest(1).ticks == 10
        assert ring.latest(2).ticks == 20
        ring.drop(1)
        assert ring.latest(1) is None
        assert ring.latest(2).ticks == 20

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointRing(depth=0)


class TestTransparentRetry:
    """Transient faults never reach the tenant: retried, bit-identical."""

    @pytest.mark.parametrize("spec", [
        "lockup:0.1", "abi_drop:0.1", "abi_dup:0.1", "hang:0.05",
        "lockup:0.05,abi_drop:0.05,abi_dup:0.05,hang:0.02",
    ])
    def test_transient_faults_invisible(self, service, reference, spec):
        sup = Supervisor(fleet(service, specs=(spec, spec)))
        tenant = sup.admit("app", APP)
        sup.run("app", 60)
        assert outcome(tenant) == reference
        assert len(sup.recoveries) == 0

    def test_retries_surface_in_health_counters(self, service, reference):
        sup = Supervisor(fleet(service, specs=("abi_drop:0.2",)))
        tenant = sup.admit("app", APP)
        sup.run("app", 60)
        assert outcome(tenant) == reference
        stats = sup.stats()
        assert sum(r["retries"] for r in stats["retry"]) > 0
        assert stats["recoveries"] == 0


class TestQuarantineAndRestore:
    def test_board_death_recovers_onto_healthy_board(self, service, reference):
        sup = Supervisor(fleet(service, specs=("board_death@6",)))
        tenant = sup.admit("app", APP)
        sup.run("app", 60)
        assert outcome(tenant) == reference
        assert len(sup.recoveries) == 1
        assert sup.quarantines == 1
        report = sup.recoveries[0]
        assert report.destination == FAST.name  # re-hosted on hardware
        assert report.checkpoint_ticks <= report.crash_ticks
        assert report.restore_seconds > 0
        assert tenant.host is sup.hypervisors[1]
        assert not sup.hypervisors[0].healthy

    def test_quarantined_hypervisor_rejects_admission(self, service):
        hypervisors = fleet(service)
        hypervisors[0].quarantine()
        with pytest.raises(BoardDeadError):
            hypervisors[0].place_subprogram("x", None, None)
        # The supervisor simply places on the healthy sibling instead.
        sup = Supervisor(hypervisors)
        tenant = sup.admit("app", APP)
        sup.run("app", 16)
        assert tenant.host is hypervisors[1]

    def test_exhausted_retries_escalate_to_recovery(self, service, reference):
        # Every control op locks up: retry budgets exhaust on both
        # boards, and the tenant still finishes — in software.
        sup = Supervisor(fleet(service, specs=("lockup:1.0", "lockup:1.0")))
        tenant = sup.admit("app", APP)
        sup.run("app", 60)
        assert outcome(tenant) == reference
        assert sup.quarantines == 2
        assert sup.recoveries[-1].destination == "software"
        assert tenant.host is None
        assert all(h.retry.exhausted >= 1 for h in sup.hypervisors)

    def test_no_fallback_raises_when_fleet_is_gone(self, service):
        sup = Supervisor(fleet(service, specs=("lockup:1.0", "lockup:1.0")),
                         software_fallback=False)
        sup.admit("app", APP)
        with pytest.raises(PersistentFabricError):
            sup.run("app", 60)

    def test_replay_is_exactly_once(self, service, reference):
        """Output emitted between the checkpoint and the crash is
        discarded with the crashed host and re-emitted by the replay —
        never duplicated, never lost."""
        sup = Supervisor(fleet(service, specs=("board_death@8",)),
                         checkpoint_every=4)
        tenant = sup.admit("app", APP)
        sup.run("app", 60)
        log = outcome(tenant)[0]
        assert log == reference[0]
        assert len(log) == len(set(log))  # no duplicated $display lines


class TestCotenantRecovery:
    def test_all_victims_restored(self, service):
        other = APP.replace('"n=%0d"', '"m=%0d"')
        sup = Supervisor(fleet(service, specs=("board_death@12",)))
        a = sup.admit("a", APP)
        b = sup.admit("b", other)
        sup.run("a", 60)
        sup.run("b", 60)
        assert len(sup.recoveries) == 2  # both co-residents restored
        assert {r.tenant for r in sup.recoveries} == {"a", "b"}
        assert a.runtime.finished and b.runtime.finished
        assert [l for l in b.runtime.host.display_log] == \
               [l.replace("n=", "m=") for l in a.runtime.host.display_log]
