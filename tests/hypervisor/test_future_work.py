"""Tests for the implemented future-work features: clock domains (§6.2)
and speculative compilation (§7)."""

import pytest

from repro.core import compile_program
from repro.fabric import F1, CompilationCache
from repro.fabric.speculative import SpeculativeCompiler
from repro.hypervisor import Hypervisor, coalesce
from repro.runtime import Runtime
from repro.harness.common import bench_program, bench_source_kwargs, bench_vfs


def counter_src(name):
    return f"""
module {name}(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + 1;
  assign out = n;
endmodule
"""


def attach(runtime, client):
    runtime.tick(1)
    runtime.attach(client)
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(1)
    return runtime


class TestClockDomains:
    def test_domains_decouple_slow_arrivals(self):
        """With clock domains, adpcm's arrival leaves bitcoin's clock
        alone — the exact fix Figure 12's discussion proposes."""
        global_hv = Hypervisor(F1, clock_domains=False)
        cdc_hv = Hypervisor(F1, clock_domains=True)
        outcomes = {}
        for tag, hv in (("global", global_hv), ("cdc", cdc_hv)):
            rt_b = Runtime(bench_program("bitcoin", **bench_source_kwargs("bitcoin")),
                           name="bitcoin")
            attach(rt_b, hv.connect("bitcoin"))
            clock_before = rt_b.placement.clock_hz
            rt_a = Runtime(bench_program("adpcm"), vfs=bench_vfs("adpcm"),
                           name="adpcm")
            attach(rt_a, hv.connect("adpcm"))
            clock_after = hv.design.clock_for(rt_b.placement.engine_id)
            outcomes[tag] = (clock_before, clock_after)
        g_before, g_after = outcomes["global"]
        c_before, c_after = outcomes["cdc"]
        assert g_after < g_before          # the Figure 12 collapse...
        assert c_after == c_before         # ...gone with clock domains

    def test_domains_cost_cdc_logic(self):
        programs = {
            1: compile_program(counter_src("a")),
            2: compile_program(counter_src("b")),
        }
        plain = coalesce(programs, F1, clock_domains=False)
        domains = coalesce(programs, F1, clock_domains=True)
        assert domains.resources.luts > plain.resources.luts
        assert domains.resources.ffs > plain.resources.ffs

    def test_per_engine_clock_lookup(self):
        programs = {1: compile_program(counter_src("a"))}
        design = coalesce(programs, F1, clock_domains=True)
        assert design.clock_for(1) == design.engine_clocks_hz[1]
        assert design.clock_for(99) == design.clock_hz  # fallback


class TestSpeculativeCompilation:
    def test_builds_land_after_latency(self):
        cache = CompilationCache()
        spec = SpeculativeCompiler(cache, "f1", "hypervisor")
        program = compile_program(counter_src("a"))
        design = coalesce({1: program}, F1)
        hv = Hypervisor(F1, cache=cache)
        bitstream = hv._make_bitstream(design)
        spec.enqueue(bitstream, now=0.0)
        assert spec.settle(now=1.0) == 0            # still building
        assert spec.settle(now=bitstream.compile_seconds + 1) == 1
        assert cache.lookup_quiet("f1", "hypervisor", design.digest) is not None

    def test_duplicate_enqueue_ignored(self):
        cache = CompilationCache()
        spec = SpeculativeCompiler(cache, "f1")
        program = compile_program(counter_src("a"))
        hv = Hypervisor(F1, cache=cache)
        bitstream = hv._make_bitstream(coalesce({1: program}, F1))
        spec.enqueue(bitstream, 0.0)
        spec.enqueue(bitstream, 0.0)
        assert len(spec.in_flight) == 1

    def test_parallelism_queues_excess(self):
        cache = CompilationCache()
        spec = SpeculativeCompiler(cache, "f1", parallelism=1)
        hv = Hypervisor(F1, cache=cache)
        bitstreams = [
            hv._make_bitstream(coalesce({1: compile_program(counter_src(f"m{i}"))}, F1))
            for i in range(3)
        ]
        for bs in bitstreams:
            spec.enqueue(bs, 0.0)
        ready = sorted(b.ready_at for b in spec.in_flight)
        assert ready[1] > ready[0]  # serialized behind lane 0

    def test_departure_speculation_warms_cache(self):
        """The headline scenario: a tenant leaves, and the design
        without it was already compiled in the background."""
        hv = Hypervisor(F1)
        hv.enable_speculation()
        rt1 = attach(Runtime(counter_src("a")), hv.connect("one"))
        client_b = hv.connect("two")
        rt2 = attach(Runtime(counter_src("b")), client_b)

        hv.speculate_departures(now=0.0)
        assert hv.speculator.in_flight
        # Let the background builds finish...
        horizon = max(b.ready_at for b in hv.speculator.in_flight) + 1
        hv.speculator.settle(now=horizon)

        misses_before = hv.cache.stats.misses
        n_before = rt1.engine.get("n")
        client_b.release(rt2.placement.engine_id)  # triggers recompile
        assert hv.cache.stats.misses == misses_before  # pure cache hit
        rt1.tick(2)
        assert rt1.engine.get("n") == n_before + 2  # state preserved
