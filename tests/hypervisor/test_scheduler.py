"""Scheduler tests: round-robin IO sharing and ABI serialization."""

import pytest

from repro.hypervisor import AbiSerializer, RoundRobinIoScheduler
from repro.hypervisor.engine_table import EngineTable
from repro.hypervisor.handshake import state_safe_reprogram
from repro.amorphos import ProtectionDomain
from repro.core import compile_program


class TestRoundRobin:
    def test_solo_stream_runs_at_own_period(self):
        sched = RoundRobinIoScheduler()
        sched.register(1, 2e-6)
        assert sched.effective_period(1) == 2e-6
        assert sched.throughput_fraction(1) == 1.0

    def test_contention_sums_periods(self):
        sched = RoundRobinIoScheduler()
        sched.register(1, 2e-6)
        sched.register(2, 3e-6)
        assert sched.effective_period(1) == pytest.approx(5e-6)
        assert sched.effective_period(2) == pytest.approx(5e-6)

    def test_short_ops_lose_more_than_half(self):
        """Figure 11: regex (short reads) drops below 50% against nw."""
        sched = RoundRobinIoScheduler()
        sched.register(1, 2e-6)   # regex-like
        sched.register(2, 3e-6)   # nw-like
        assert sched.throughput_fraction(1) < 0.5
        assert sched.throughput_fraction(2) > 0.5

    def test_inactive_stream_does_not_contend(self):
        sched = RoundRobinIoScheduler()
        sched.register(1, 2e-6)
        sched.register(2, 3e-6)
        sched.set_active(2, False)
        assert sched.effective_period(1) == 2e-6

    def test_unregister(self):
        sched = RoundRobinIoScheduler()
        sched.register(1, 2e-6)
        sched.register(2, 3e-6)
        sched.unregister(2)
        assert sched.effective_period(1) == 2e-6

    def test_extra_wait(self):
        sched = RoundRobinIoScheduler()
        sched.register(1, 2e-6)
        sched.register(2, 3e-6)
        assert sched.extra_wait(1) == pytest.approx(3e-6)

    def test_three_way_contention(self):
        sched = RoundRobinIoScheduler()
        for engine_id in (1, 2, 3):
            sched.register(engine_id, 1e-6)
        assert sched.throughput_fraction(1) == pytest.approx(1 / 3)


class TestSerializer:
    def test_requests_accumulate(self):
        ser = AbiSerializer(service_seconds=1e-6)
        for _ in range(5):
            ser.admit()
        assert ser.requests == 5
        assert ser.busy_seconds == pytest.approx(5e-6)


class TestChannelContention:
    def test_channel_latency_includes_io_wait(self):
        """A hypervisor channel's per-message latency stretches when the
        engine's IO stream is contended (§4.3)."""
        from repro.fabric import F1
        from repro.hypervisor import Hypervisor
        from repro.runtime import Runtime

        hv = Hypervisor(F1)
        rt = Runtime("""
            module c(input wire clock);
              reg [31:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """)
        client = hv.connect("one")
        rt.attach(client)
        rt._hw_ready_at = rt.sim_time
        rt.tick(1)
        engine_id = rt.placement.engine_id
        channel = hv.channel(engine_id)
        base = channel.current_latency()
        hv.io_scheduler.register(engine_id, 2e-6)
        hv.io_scheduler.register(999, 5e-6)
        contended = channel.current_latency()
        assert contended == pytest.approx(base + 5e-6)
        hv.io_scheduler.set_active(999, False)
        assert channel.current_latency() == pytest.approx(base)


class TestEngineTable:
    def test_register_assigns_unique_ids(self):
        table = EngineTable()
        program = compile_program(
            "module a(input wire clock); endmodule"
        )
        domain = ProtectionDomain("d")
        r1 = table.register("i1", domain, program)
        r2 = table.register("i2", domain, program)
        assert r1.engine_id != r2.engine_id
        assert len(table) == 2

    def test_retire_and_sweep(self):
        table = EngineTable()
        program = compile_program("module a(input wire clock); endmodule")
        domain = ProtectionDomain("d")
        r1 = table.register("i1", domain, program)
        r2 = table.register("i2", domain, program)
        table.retire(r1.engine_id)
        assert len(table.active) == 1
        survivors = table.sweep()
        assert [r.engine_id for r in survivors] == [r2.engine_id]
        assert r1.engine_id not in table

    def test_owned_by(self):
        table = EngineTable()
        program = compile_program("module a(input wire clock); endmodule")
        alice, bob = ProtectionDomain("a"), ProtectionDomain("b")
        table.register("i1", alice, program)
        table.register("i2", bob, program)
        table.register("i3", alice, program)
        assert len(table.owned_by(alice)) == 2

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            EngineTable().lookup(42)


class TestDeficitRoundRobin:
    def _shares(self, weights, rounds=400):
        """Simulate greedy consumers; returns per-class tick totals."""
        from repro.hypervisor import DeficitRoundRobin

        drr = DeficitRoundRobin(quantum=8, classes=weights)
        for name in weights:
            drr.enqueue(name, f"job-{name}")
        consumed = {name: 0 for name in weights}
        for _ in range(rounds):
            name, item, budget = drr.next_turn()
            consumed[name] += budget
            drr.charge(name, budget)
            drr.requeue(name, item)  # still running: back of the queue
        return consumed

    def test_weighted_shares_converge(self):
        consumed = self._shares({"high": 4.0, "low": 1.0})
        ratio = consumed["high"] / consumed["low"]
        assert 3.5 <= ratio <= 4.5

    def test_no_starvation(self):
        """Every backlogged class gets turns, however light its weight."""
        consumed = self._shares({"heavy": 16.0, "light": 0.25})
        assert consumed["light"] > 0

    def test_budget_floor_is_one_tick(self):
        from repro.hypervisor import DeficitRoundRobin

        drr = DeficitRoundRobin(quantum=1, classes={"tiny": 0.1})
        drr.enqueue("tiny", "job")
        name, item, budget = drr.next_turn()
        assert budget >= 1

    def test_deficit_resets_when_queue_empties(self):
        from repro.hypervisor import DeficitRoundRobin

        drr = DeficitRoundRobin(quantum=8, classes={"a": 1.0, "b": 1.0})
        drr.enqueue("a", "j1")
        name, item, budget = drr.next_turn()
        drr.charge(name, 1)  # retire without requeue: queue now empty
        assert drr.stats()["classes"]["a"]["deficit"] == 0.0
        # An idle class cannot bank credit while empty.
        drr.enqueue("b", "j2")
        drr.enqueue("a", "j3")
        turns = []
        for _ in range(4):
            n, i, b = drr.next_turn()
            turns.append(n)
            drr.charge(n, b)
            drr.requeue(n, i)
        assert set(turns) == {"a", "b"}

    def test_withdraw_removes_queued_item(self):
        from repro.hypervisor import DeficitRoundRobin

        drr = DeficitRoundRobin(quantum=4, classes={"a": 1.0})
        drr.enqueue("a", "j1")
        assert drr.withdraw("a", "j1")
        assert not drr.withdraw("a", "j1")
        assert drr.backlog == 0
        assert drr.next_turn() is None
