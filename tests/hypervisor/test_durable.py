"""Write-ahead tenant journal + durable checkpoint store."""

import os

import pytest

from repro.fabric.faults import FaultPlan
from repro.hypervisor import (
    Checkpoint, JournalError, TenantJournal,
)
from repro.runtime.runtime import Context


def make_checkpoint(ticks=8, digest="d" * 16, display=()):
    context = Context(program_source="module m(input wire clock); endmodule",
                      state={"n": ticks}, vfs_state={}, vfs_files={},
                      ticks=ticks, display_log=list(display))
    return Checkpoint(engine_id=1, digest=digest, ticks=ticks,
                      sim_time=float(ticks) * 1e-8, context=context)


class TestJournalRecords:
    def test_lifecycle_replay(self, tmp_path):
        journal = TenantJournal(tmp_path)
        journal.job("t1", digest="d1", source="src1", priority="high",
                    principal="alice", target=60, clock="clk", seq=1)
        journal.admit("t1", digest="d1", source="src1", clock="clk")
        journal.job("t2", digest="d2", source="src2", priority="normal",
                    principal="bob", target=None, clock="clock", seq=2)
        journal.terminal("t1", "released")
        image = journal.replay()
        assert image.records == 4 and image.skipped == 0
        assert image.tenants["t1"].terminal == "released"
        t2 = image.tenants["t2"]
        assert t2.terminal is None and not t2.admitted
        assert (t2.digest, t2.source, t2.priority, t2.principal,
                t2.target, t2.seq) == ("d2", "src2", "normal", "bob",
                                       None, 2)
        assert [t.name for t in image.in_flight()] == ["t2"]

    def test_name_reuse_supersedes_retired_lifecycle(self, tmp_path):
        journal = TenantJournal(tmp_path)
        journal.job("t", digest="d1", source="s1", priority="normal",
                    principal="p", target=None, clock="clock", seq=1)
        journal.terminal("t", "released")
        journal.job("t", digest="d2", source="s2", priority="high",
                    principal="p", target=9, clock="clock", seq=2)
        image = journal.replay()
        entry = image.tenants["t"]
        assert entry.terminal is None and entry.digest == "d2"
        assert entry.seq == 2

    def test_torn_tail_is_truncated(self, tmp_path):
        journal = TenantJournal(tmp_path)
        journal.admit("t", digest="d", source="s", clock="clock")
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(b"RPJ1 00000000 {\"t\": \"done\"")  # no newline: torn
        size_before = os.path.getsize(journal.path)
        image = journal.replay()
        assert image.records == 1 and image.truncated_bytes > 0
        assert os.path.getsize(journal.path) < size_before
        assert image.tenants["t"].admitted

    def test_mid_log_corruption_is_skipped_not_fatal(self, tmp_path):
        journal = TenantJournal(tmp_path)
        journal.admit("t1", digest="d", source="s", clock="clock")
        journal.admit("t2", digest="d", source="s", clock="clock")
        journal.close()
        data = open(journal.path, "rb").read().split(b"\n")
        data[0] = data[0][:-4] + b"XXXX"  # flip bytes inside record 1
        with open(journal.path, "wb") as fh:
            fh.write(b"\n".join(data))
        image = journal.replay()
        assert image.skipped == 1 and image.records == 1
        assert "t2" in image.tenants and "t1" not in image.tenants


class TestJournalFaults:
    def test_critical_record_retries_through_torn_writes(self, tmp_path):
        journal = TenantJournal(
            tmp_path, faults=FaultPlan("disk_torn@0,disk_torn@1"))
        assert journal.admit("t", digest="d", source="s", clock="clock")
        assert journal.corrupt_writes == 2
        image = journal.replay()
        # Two torn attempts left garbage lines; replay skips them and
        # still finds the clean third attempt.
        assert image.tenants["t"].admitted
        assert image.skipped == 2

    def test_critical_record_exhaustion_raises(self, tmp_path):
        journal = TenantJournal(tmp_path, write_retries=2,
                                faults=FaultPlan("disk_enospc:1.0"))
        with pytest.raises(JournalError):
            journal.admit("t", digest="d", source="s", clock="clock")

    def test_lossy_checkpoint_record_gives_up_quietly(self, tmp_path):
        journal = TenantJournal(tmp_path)
        assert journal.checkpoint("t", make_checkpoint())
        # enospc on every write: the snapshot itself cannot land.
        bad = TenantJournal(tmp_path / "bad", write_retries=2,
                            faults=FaultPlan("disk_enospc:1.0"))
        assert not bad.checkpoint("t", make_checkpoint())
        assert bad.snapshots_written == 0


class TestSnapshots:
    def test_checkpoint_roundtrip(self, tmp_path):
        journal = TenantJournal(tmp_path)
        ckpt = make_checkpoint(ticks=12, display=["a", "b"])
        # ckpt records only fold onto tenants the log knows about.
        journal.admit("t", digest=ckpt.digest, source="s", clock="clock")
        assert journal.checkpoint("t", ckpt)
        image = journal.replay()
        snaps = image.tenants["t"].snapshots
        assert snaps
        loaded = journal.load_snapshot(snaps[-1])
        assert loaded["ticks"] == 12 and loaded["digest"] == ckpt.digest
        assert loaded["context"].display_log == ["a", "b"]
        assert loaded["context"].state == {"n": 12}

    def test_snapshot_verified_before_recorded(self, tmp_path):
        journal = TenantJournal(tmp_path)
        journal.admit("t", digest="d", source="s", clock="clock")
        # First two snapshot write attempts land corrupted; the
        # write-verify loop must retry until a readable one is on disk.
        journal.faults = FaultPlan("disk_bitrot@0,disk_torn@1")
        assert journal.checkpoint("t", make_checkpoint())
        journal.faults = None
        image = journal.replay()
        fname = image.tenants["t"].snapshots[-1]
        assert journal.load_snapshot(fname) is not None
        assert journal.snapshot_retries >= 1

    def test_prune_keeps_newest(self, tmp_path):
        journal = TenantJournal(tmp_path, keep_snapshots=2)
        journal.admit("t", digest="d", source="s", clock="clock")
        for ticks in (4, 8, 12, 16):
            journal.checkpoint("t", make_checkpoint(ticks=ticks))
        image = journal.replay()
        snaps = image.tenants["t"].snapshots
        assert len(snaps) == 4  # the journal remembers all of them...
        survivors = [s for s in snaps
                     if journal.load_snapshot(s) is not None]
        # ...but only the newest two files survive pruning.
        assert survivors == snaps[-2:]

    def test_drop_snapshots_releases_files(self, tmp_path):
        journal = TenantJournal(tmp_path)
        journal.admit("t", digest="d", source="s", clock="clock")
        journal.checkpoint("t", make_checkpoint())
        assert any(os.scandir(journal.snapshot_dir))
        journal.drop_snapshots("t")
        assert not any(f.name.endswith(".ckpt")
                       for f in os.scandir(journal.snapshot_dir))
