"""Hypervisor tests: coalescing, handshake, multitenancy, nesting."""

import pytest

from repro.amorphos import ProtectionError
from repro.core import compile_program
from repro.fabric import DE10, F1, Device
from repro.hypervisor import CapacityError, Hypervisor, coalesce, engine_module_name
from repro.runtime import Runtime


def counter_src(name, step=1):
    return f"""
module {name}(input wire clock, output wire [31:0] out);
  reg [31:0] n = 0;
  always @(posedge clock) n <= n + {step};
  assign out = n;
endmodule
"""


def attach(runtime, client):
    runtime.attach(client)
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(1)
    return runtime


class TestCoalesce:
    def test_engine_modules_named_by_id(self):
        programs = {
            3: compile_program(counter_src("a")),
            7: compile_program(counter_src("b")),
        }
        design = coalesce(programs, F1)
        assert engine_module_name(3) in design.text
        assert engine_module_name(7) in design.text

    def test_resources_accumulate(self):
        one = coalesce({1: compile_program(counter_src("a"))}, F1)
        two = coalesce({
            1: compile_program(counter_src("a")),
            2: compile_program(counter_src("b")),
        }, F1)
        assert two.resources.luts > one.resources.luts

    def test_digest_changes_with_membership(self):
        p = compile_program(counter_src("a"))
        assert (coalesce({1: p}, F1).digest
                != coalesce({1: p, 2: p}, F1).digest)

    def test_empty_design(self):
        design = coalesce({}, F1)
        assert design.engine_ids == []


class TestMultitenancy:
    def test_two_tenants_run_concurrently(self):
        hv = Hypervisor(F1)
        rt1 = attach(Runtime(counter_src("a", 1)), hv.connect("one"))
        rt2 = attach(Runtime(counter_src("b", 3)), hv.connect("two"))
        rt1.tick(9)
        rt2.tick(9)
        assert rt1.engine.get("n") == 10
        assert rt2.engine.get("n") == 30

    def test_state_survives_new_tenant_arrival(self):
        hv = Hypervisor(F1)
        rt1 = attach(Runtime(counter_src("a")), hv.connect("one"))
        rt1.tick(5)
        n_before = rt1.engine.get("n")
        attach(Runtime(counter_src("b")), hv.connect("two"))
        # The arrival reprogrammed the device; rt1's state was replayed.
        assert rt1.engine.get("n") == n_before
        rt1.tick(1)
        assert rt1.engine.get("n") == n_before + 1

    def test_handshake_reports(self):
        hv = Hypervisor(F1)
        attach(Runtime(counter_src("a")), hv.connect("one"))
        attach(Runtime(counter_src("b")), hv.connect("two"))
        assert len(hv.handshakes) == 2
        assert hv.handshakes[1].engines_paused == 1
        assert hv.handshakes[1].bits_saved > 0

    def test_channel_isolation(self):
        hv = Hypervisor(F1)
        client_a = hv.connect("one")
        client_b = hv.connect("two")
        rt1 = attach(Runtime(counter_src("a")), client_a)
        rt2 = attach(Runtime(counter_src("b")), client_b)
        with pytest.raises(ProtectionError):
            client_a.channel(rt2.placement.engine_id)

    def test_release_recompiles_without_tenant(self):
        hv = Hypervisor(F1)
        client_a = hv.connect("one")
        client_b = hv.connect("two")
        rt1 = attach(Runtime(counter_src("a")), client_a)
        rt2 = attach(Runtime(counter_src("b")), client_b)
        client_b.release(rt2.placement.engine_id)
        assert len(hv.table.active) == 1
        rt1.tick(2)
        assert rt1.engine.get("n") == 3

    def test_release_all_clears_board(self):
        hv = Hypervisor(F1)
        client = hv.connect("one")
        rt = attach(Runtime(counter_src("a")), client)
        client.release(rt.placement.engine_id)
        assert hv.design is None
        assert not hv.board.slots


class TestGlobalClock:
    def test_single_tenant_clock(self):
        hv = Hypervisor(F1)
        attach(Runtime(counter_src("a")), hv.connect("one"))
        assert hv.clock_hz in F1.clock_steps_hz

    def test_more_tenants_never_raise_clock(self):
        hv = Hypervisor(F1)
        attach(Runtime(counter_src("a")), hv.connect("one"))
        clock1 = hv.clock_hz
        attach(Runtime(counter_src("b")), hv.connect("two"))
        assert hv.clock_hz <= clock1


class TestCapacityAndNesting:
    def tiny_device(self):
        return Device(
            name="tiny", family="toy", luts=2_000, ffs=4_000, bram_kbits=10,
            max_clock_hz=50e6, clock_steps_hz=(50e6, 25e6),
            reconfig_seconds=0.1, abi_latency_s=1e-6, lut_delay_ns=1.0,
            compile_seconds=1.0,
        )

    def test_capacity_error_without_parent(self):
        hv = Hypervisor(self.tiny_device(), use_hull=False)
        client = hv.connect("one")
        big = compile_program(counter_src("a"))
        # Fill the tiny device until it overflows.
        with pytest.raises(CapacityError):
            for i in range(50):
                rt = Runtime(counter_src(f"c{i}"))
                rt.attach(hv.connect(f"inst{i}"))

    def test_delegation_to_parent(self):
        parent = Hypervisor(F1)
        child = Hypervisor(self.tiny_device(), use_hull=False, parent=parent)
        placed = 0
        runtimes = []
        for i in range(8):
            rt = Runtime(counter_src(f"c{i}", step=i + 1))
            rt.attach(child.connect(f"inst{i}"))
            rt._hw_ready_at = rt.sim_time
            rt.tick(1)
            runtimes.append(rt)
            placed += 1
        # Some engines were delegated to the parent hypervisor...
        assert child._remote, "expected delegation to the parent"
        assert len(parent.table.active) == len(child._remote)
        # ...and they still execute correctly through the child.
        for i, rt in enumerate(runtimes):
            rt.tick(4)
            assert rt.engine.get("n") == 5 * (i + 1)
