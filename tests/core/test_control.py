"""Control transformation tests (Figure 4 building blocks)."""

from repro.core.control import (
    ABI_CONT, ABI_NONE, TASK_NONE, EdgeDetector, abi_ports,
    bookkeeping_decls, prev_name, prev_value_items, status_decls,
)
from repro.verilog import ast, print_expr, print_item


class TestEdgeDetectors:
    def test_posedge_wire(self):
        det = EdgeDetector("clock", "posedge")
        assert det.wire == "__pos_clock"
        decls = det.decls()
        assert decls[0].name == "__pos_clock"
        assert "!(__p_clock) & clock" in print_expr(decls[0].init)

    def test_negedge_wire(self):
        det = EdgeDetector("rst", "negedge")
        assert "__p_rst & !(rst)" in print_expr(det.decls()[0].init)

    def test_anyedge_wire(self):
        det = EdgeDetector("x", "any")
        assert "__p_x != x" in print_expr(det.decls()[0].init)

    def test_prev_name(self):
        assert prev_name("clock") == "__p_clock"


class TestPrevValueItems:
    def test_register_and_update_block(self):
        items = prev_value_items(["clock", "rst"])
        decls = [i for i in items if isinstance(i, ast.Decl)]
        always = [i for i in items if isinstance(i, ast.Always)]
        assert {d.name for d in decls} == {"__p_clock", "__p_rst"}
        assert len(always) == 1
        # Non-blocking so the edge wires stay up for one native cycle.
        for stmt in always[0].stmt.stmts:
            assert not stmt.blocking

    def test_empty_signal_list(self):
        assert prev_value_items([]) == []


class TestBookkeeping:
    def test_state_initialised_to_final(self):
        decls = bookkeeping_decls(final_state=9)
        state = [d for d in decls if d.name == "__state"][0]
        assert state.init.value == 9

    def test_task_initialised_to_none(self):
        decls = bookkeeping_decls(final_state=9)
        task = [d for d in decls if d.name == "__task"][0]
        assert task.init.value == TASK_NONE


class TestStatusWires:
    def test_all_four_declared(self):
        names = {d.name for d in status_decls(final_state=5)}
        assert names == {"__tasks", "__final", "__cont", "__done"}

    def test_cont_formula(self):
        decls = {d.name: d for d in status_decls(final_state=5)}
        text = print_expr(decls["__cont"].init)
        assert f"__abi == {ABI_CONT}" in text
        assert "__final" in text and "__tasks" in text


class TestAbiPorts:
    def test_ports(self):
        ports, decls = abi_ports()
        assert ports == ["__clk", "__abi"]
        assert decls[0].direction == "input"
        assert decls[1].range is not None  # 6-bit command word

    def test_command_encodings_distinct(self):
        assert ABI_NONE != ABI_CONT
