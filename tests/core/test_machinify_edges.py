"""State-machine lowering edge cases: loops blocking on IO, repeats,
queries in loop conditions — the §3 generality beyond Figure 2."""

import struct

import pytest

from repro.core import compile_program
from repro.fabric import DE10
from repro.interp import Simulator, TaskHost, VirtualFS
from repro.runtime import DirectBoardBackend, Runtime


def equivalent_run(text, state_vars, ticks, vfs_files=None):
    program = compile_program(text)

    def make_vfs():
        vfs = VirtualFS()
        for path, data in (vfs_files or {}).items():
            vfs.add_file(path, data)
        return vfs

    host = TaskHost(vfs=make_vfs())
    sim = Simulator(program.flat, host, env=program.env)
    for _ in range(ticks):
        if host.finished:
            break
        sim.tick()

    runtime = Runtime(program, vfs=make_vfs())
    runtime.attach(DirectBoardBackend(DE10))
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(ticks)
    for var in state_vars:
        assert runtime.engine.get(var) == sim.get(var), var
    assert runtime.host.display_log == host.display_log
    return program


class TestLoopsWithTraps:
    def test_while_with_query_condition(self):
        """The loop condition itself traps — re-queried per iteration."""
        data = bytes([2, 4, 6, 8])
        program = equivalent_run("""
            module m(input wire clock);
              integer fd = $fopen("d.bin");
              reg [31:0] c;
              reg [31:0] total = 0;
              reg done = 0;
              always @(posedge clock) begin
                if (!done) begin
                  while (!$feof(fd)) begin
                    c = $fgetc(fd);
                    if (!$feof(fd))
                      total = total + c;
                  end
                  done <= 1;
                end
              end
            endmodule
        """, ["total", "done"], ticks=3, vfs_files={"d.bin": data})
        # The whole file is drained inside ONE virtual tick via back
        # edges: impossible without sub-clock-tick yields.
        feofs = [s for s in program.transform.tasks.values()
                 if s.name == "$feof"]
        assert feofs

    def test_repeat_with_task_body(self):
        program = equivalent_run("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) begin
                repeat (3) begin
                  $display("n=%0d", n);
                  n = n + 1;
                end
              end
            endmodule
        """, ["n"], ticks=2)
        assert program.transform.n_states > 4  # loop states with back edge

    def test_for_loop_bound_by_register(self):
        equivalent_run("""
            module m(input wire clock);
              reg [7:0] limit = 1;
              reg [31:0] total = 0;
              integer i;
              always @(posedge clock) begin
                for (i = 0; i < limit; i = i + 1) begin
                  $display("i=%0d", i);
                  total = total + i;
                end
                limit <= limit + 1;
              end
            endmodule
        """, ["total", "limit"], ticks=4)


class TestQueriesEverywhere:
    def test_query_in_case_subject(self):
        equivalent_run("""
            module m(input wire clock);
              reg [31:0] buckets0 = 0;
              reg [31:0] buckets1 = 0;
              always @(posedge clock) begin
                case ($random & 32'd1)
                  0: buckets0 <= buckets0 + 1;
                  default: buckets1 <= buckets1 + 1;
                endcase
              end
            endmodule
        """, ["buckets0", "buckets1"], ticks=8)

    def test_two_queries_one_expression(self):
        equivalent_run("""
            module m(input wire clock);
              reg [31:0] mix = 0;
              always @(posedge clock)
                mix <= mix ^ ($random ^ $random);
            endmodule
        """, ["mix"], ticks=5)

    def test_query_in_nba_rhs_and_index(self):
        equivalent_run("""
            module m(input wire clock);
              reg [7:0] mem [0:7];
              reg [31:0] r;
              always @(posedge clock) begin
                r = $random;
                mem[r[2:0]] <= r[7:0];
              end
            endmodule
        """, [], ticks=6)


class TestFinishMidLoop:
    def test_finish_breaks_out(self):
        data = struct.pack(">I", 9)
        equivalent_run("""
            module m(input wire clock);
              integer fd = $fopen("d.bin");
              reg [31:0] v = 0;
              always @(posedge clock) begin
                $fread(fd, v);
                if ($feof(fd)) $finish(0);
                else $display("read %0d", v);
              end
            endmodule
        """, ["v"], ticks=5, vfs_files={"d.bin": data})
