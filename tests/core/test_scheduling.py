"""Scheduling transformation tests (Figure 3)."""

import pytest

from repro.core.scheduling import (
    TransformError, build_core, defork, flatten_blocks, guard_name,
)
from repro.verilog import ast, parse_module, parse_stmt


class TestDefork:
    def test_fork_becomes_block(self):
        stmt = defork(parse_stmt("fork a = 1; b = 2; join"))
        assert isinstance(stmt, ast.Block)
        assert len(stmt.stmts) == 2

    def test_nested_fork(self):
        stmt = defork(parse_stmt("begin fork a = 1; fork b = 2; join join end"))
        from repro.verilog.ast_nodes import walk_stmt

        assert not any(isinstance(s, ast.ForkJoin) for s in walk_stmt(stmt))

    def test_fork_inside_if(self):
        stmt = defork(parse_stmt("if (c) fork a = 1; join"))
        assert isinstance(stmt.then_stmt, ast.Block)

    def test_fork_inside_case(self):
        stmt = defork(parse_stmt("case (c) 1: fork a = 1; join endcase"))
        assert isinstance(stmt.items[0].stmt, ast.Block)

    def test_fork_inside_loop(self):
        stmt = defork(parse_stmt("while (c) fork a = 1; join"))
        assert isinstance(stmt.body, ast.Block)


class TestFlatten:
    def test_nested_blocks_flatten(self):
        stmt = flatten_blocks(parse_stmt(
            "begin a = 1; begin b = 2; begin c = 3; end end end"
        ))
        assert isinstance(stmt, ast.Block)
        assert len(stmt.stmts) == 3
        assert all(isinstance(s, ast.Assign) for s in stmt.stmts)

    def test_named_blocks_preserved(self):
        stmt = flatten_blocks(parse_stmt("begin a = 1; begin : named b = 2; end end"))
        assert len(stmt.stmts) == 2
        assert isinstance(stmt.stmts[1], ast.Block)
        assert stmt.stmts[1].name == "named"

    def test_blocks_inside_if_flatten(self):
        stmt = flatten_blocks(parse_stmt("if (c) begin begin a = 1; end end"))
        assert len(stmt.then_stmt.stmts) == 1


class TestGuardNames:
    def test_mangling(self):
        assert guard_name("posedge", "clock") == "__pos_clock"
        assert guard_name("negedge", "rst") == "__neg_rst"
        assert guard_name("any", "x") == "__any_x"


class TestBuildCore:
    def test_single_block(self):
        mod = parse_module("""
            module m(input wire clock);
              reg r;
              always @(posedge clock) r <= 1;
            endmodule
        """)
        core = build_core(mod)
        assert len(core.conjuncts) == 1
        assert core.conjuncts[0].guards == ("__pos_clock",)
        assert core.edge_signals == [("posedge", "clock")]

    def test_multiple_blocks_merge(self):
        mod = parse_module("""
            module m(input wire clock, input wire rst);
              reg a, b;
              always @(posedge clock) a <= 1;
              always @(posedge clock or negedge rst) b <= 1;
            endmodule
        """)
        core = build_core(mod)
        assert len(core.conjuncts) == 2
        assert core.guard_union == ["__pos_clock", "__neg_rst"]
        assert ("negedge", "rst") in core.edge_signals

    def test_multi_clock_domains(self):
        mod = parse_module("""
            module m(input wire cka, input wire ckb);
              reg a, b;
              always @(posedge cka) a <= 1;
              always @(posedge ckb) b <= 1;
            endmodule
        """)
        core = build_core(mod)
        assert len(core.edge_signals) == 2

    def test_body_guards_each_conjunct(self):
        mod = parse_module("""
            module m(input wire clock);
              reg a;
              always @(posedge clock) a <= 1;
            endmodule
        """)
        body = build_core(mod).body()
        assert isinstance(body, ast.Block)
        guard_if = body.stmts[0]
        assert isinstance(guard_if, ast.If)
        assert guard_if.cond.name == "__pos_clock"

    def test_star_blocks_not_merged(self):
        mod = parse_module("""
            module m(input wire clock, input wire x);
              reg a, comb;
              always @(posedge clock) a <= 1;
              always @(*) comb = x;
            endmodule
        """)
        core = build_core(mod)
        assert len(core.conjuncts) == 1

    def test_fork_join_removed_from_bodies(self):
        mod = parse_module("""
            module m(input wire clock);
              reg a;
              always @(posedge clock) fork a <= 1; join
            endmodule
        """)
        core = build_core(mod)
        from repro.verilog.ast_nodes import walk_stmt

        assert not any(
            isinstance(s, ast.ForkJoin) for s in walk_stmt(core.conjuncts[0].body)
        )

    def test_non_identifier_event_rejected(self):
        mod = parse_module("""
            module m(input wire [1:0] bus);
              reg a;
              always @(posedge bus[0]) a <= 1;
            endmodule
        """)
        with pytest.raises(TransformError):
            build_core(mod)
