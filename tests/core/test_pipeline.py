"""Pipeline front-door tests."""

import pytest

from repro.core import compile_program
from repro.verilog import parse, parse_module

SRC = """
module helper(input wire c, output wire o);
  assign o = ~c;
endmodule
module top(input wire clock);
  wire inv;
  reg [7:0] n = 0;
  helper h(.c(clock), .o(inv));
  always @(posedge clock) n <= n + 1;
endmodule
"""


class TestCompileProgram:
    def test_from_text_default_top_is_last_module(self):
        program = compile_program(SRC)
        assert program.name == "top"

    def test_explicit_top(self):
        program = compile_program(SRC, top="helper")
        assert program.name == "helper"

    def test_from_parsed_source(self):
        program = compile_program(parse(SRC))
        assert program.name == "top"

    def test_from_module(self):
        mod = parse_module("module solo(input wire clock); endmodule")
        program = compile_program(mod)
        assert program.name == "solo"

    def test_hierarchy_flattened(self):
        program = compile_program(SRC)
        assert program.flat.decl("h$o") is not None

    def test_hardware_text_is_deterministic(self):
        a = compile_program(SRC).hardware_text
        b = compile_program(SRC).hardware_text
        assert a == b

    def test_hardware_text_differs_from_software_text(self):
        program = compile_program(SRC)
        assert program.hardware_text != program.software_text
        assert "__state" in program.hardware_text
        assert "__state" not in program.software_text

    def test_state_report_attached(self):
        program = compile_program(SRC)
        assert any(v.name == "n" for v in program.state.variables)

    def test_env_matches_flat_module(self):
        program = compile_program(SRC)
        assert program.env.signal("n").width == 8
