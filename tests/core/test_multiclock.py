"""Multi-clock-domain soundness (§3.2: "these transformations are sound
even for programs with multiple clock domains").

The transformed machine must reproduce the original program's behaviour
when two independent clocks are driven in arbitrary interleavings —
including edges on both in the same logical step.
"""

import pytest

from repro.core import compile_program
from repro.fabric import DE10
from repro.interp import Simulator, TaskHost
from repro.runtime import DirectBoardBackend, SoftwareEngine, HardwareEngine, TrapServicer

TWO_CLOCKS = """
module m(input wire cka, input wire ckb);
  reg [15:0] na = 0;
  reg [15:0] nb = 0;
  reg [15:0] cross = 0;
  always @(posedge cka) begin
    na <= na + 1;
    cross <= cross + nb;
  end
  always @(posedge ckb) nb <= nb + 3;
endmodule
"""

MIXED_EDGES = """
module m(input wire clock, input wire rst);
  reg [15:0] n = 0;
  always @(posedge clock or negedge rst) begin
    if (!rst)
      n <= 0;
    else
      n <= n + 1;
  end
endmodule
"""


def hardware_engine(source):
    program = compile_program(source)
    backend = DirectBoardBackend(DE10)
    placement = backend.place(program)
    host = TaskHost()
    channel = backend.channel(placement.engine_id)
    engine = HardwareEngine(program, host, channel, placement.clock_hz,
                            TrapServicer(host, program.env))
    return program, engine


class TestTwoClockDomains:
    def drive(self, engine, schedule):
        for clock in schedule:
            engine.run_tick(clock)

    @pytest.mark.parametrize("schedule", [
        ["cka"] * 4,
        ["ckb"] * 4,
        ["cka", "ckb"] * 3,
        ["cka", "cka", "ckb", "cka", "ckb", "ckb"],
    ])
    def test_interleavings_match_software(self, schedule):
        program = compile_program(TWO_CLOCKS)
        sw = SoftwareEngine(program, TaskHost())
        _, hw = hardware_engine(TWO_CLOCKS)
        for clock in schedule:
            sw.run_tick(clock)
            hw.run_tick(clock)
        for var in ("na", "nb", "cross"):
            assert hw.get(var) == sw.get(var), (var, schedule)

    def test_simultaneous_edges(self):
        """Both clocks rise in the same logical step: both conjuncts of
        the merged core must run (the latched-guard mechanism)."""
        program = compile_program(TWO_CLOCKS)
        sw = SoftwareEngine(program, TaskHost())
        _, hw = hardware_engine(TWO_CLOCKS)
        for engine in (sw, hw):
            engine.set("cka", 1)
            engine.set("ckb", 1)
        # The hardware machine saw both edges at its entry; force one
        # evaluation round via a tick on an already-high clock pair.
        sw.sim.step()
        from repro.runtime.abi import Evaluate

        hw.channel.send(Evaluate())
        for engine in (sw, hw):
            engine.set("cka", 0)
            engine.set("ckb", 0)
        assert hw.get("na") == sw.get("na") == 1
        assert hw.get("nb") == sw.get("nb") == 3


class TestMixedEdgeKinds:
    def test_posedge_clock_negedge_reset(self):
        program = compile_program(MIXED_EDGES)
        sw = SoftwareEngine(program, TaskHost())
        _, hw = hardware_engine(MIXED_EDGES)
        for engine in (sw, hw):
            engine.set("rst", 1)
        for _ in range(3):
            sw.run_tick("clock")
            hw.run_tick("clock")
        assert hw.get("n") == sw.get("n") == 3
        # Async reset: a falling edge on rst clears the counter.
        for engine in (sw, hw):
            engine.set("rst", 0)
        sw.sim.step()
        from repro.runtime.abi import Evaluate

        hw.channel.send(Evaluate())
        assert hw.get("n") == sw.get("n") == 0

    def test_guard_wires_generated_per_edge_kind(self):
        program = compile_program(MIXED_EDGES)
        assert "__pos_clock" in program.transform.guard_wires
        assert "__neg_rst" in program.transform.guard_wires
