"""State-machine lowering tests (Figures 4-5)."""

import pytest

from repro.core import compile_program
from repro.core.machinify import SUFFIX, machinify
from repro.core.scheduling import TransformError
from repro.verilog import ast, flatten, parse, parse_module
from repro.verilog.ast_nodes import walk_stmt


def transform(text, top=None):
    source = parse(text)
    name = top or source.modules[-1].name
    return machinify(flatten(source, name))


FIG2 = """
module M(input wire clock);
  integer fd = $fopen("path/to/file");
  reg [31:0] r = 0;
  reg [127:0] sum = 0;
  always @(posedge clock) begin
    $fread(fd, r);
    if ($feof(fd)) begin
      $display(sum);
      $finish(0);
    end else
      sum <= sum + r;
  end
endmodule
"""


class TestStructure:
    def test_module_renamed(self):
        result = transform(FIG2)
        assert result.module.name == "M" + SUFFIX

    def test_abi_ports_added(self):
        result = transform(FIG2)
        assert result.module.ports[:2] == ("__clk", "__abi")
        assert "clock" in result.module.ports

    def test_output_is_synthesizable(self):
        result = transform(FIG2)
        for item in result.module.items:
            if isinstance(item, ast.Always):
                for stmt in walk_stmt(item.stmt):
                    assert not isinstance(stmt, ast.SysTask), stmt

    def test_bookkeeping_registers_exist(self):
        result = transform(FIG2)
        for name in ("__state", "__task", "__run", "__p_clock", "__lg_pos_clock"):
            assert result.module.decl(name) is not None, name

    def test_status_wires_exist(self):
        result = transform(FIG2)
        for name in ("__tasks", "__final", "__cont", "__done"):
            assert result.module.decl(name) is not None, name

    def test_reparseable(self):
        from repro.verilog import parse_module, print_module

        result = transform(FIG2)
        text = print_module(result.module)
        assert parse_module(text).name == result.module.name

    def test_deterministic_output(self):
        from repro.verilog import print_module

        a = print_module(transform(FIG2).module)
        b = print_module(transform(FIG2).module)
        assert a == b


class TestTaskTable:
    def test_fig2_tasks(self):
        result = transform(FIG2)
        kinds = sorted((site.kind, site.name) for site in result.tasks.values())
        assert ("task", "$fread") in kinds
        assert ("query", "$feof") in kinds
        assert ("task", "$display") in kinds
        assert ("task", "$finish") in kinds

    def test_fread_dest_recorded(self):
        result = transform(FIG2)
        fread = [s for s in result.tasks.values() if s.name == "$fread"][0]
        assert fread.dest is not None

    def test_query_allocates_register(self):
        result = transform(FIG2)
        assert result.query_regs
        for reg in result.query_regs:
            assert result.module.decl(reg) is not None

    def test_unsynthesizable_init_moved_to_software(self):
        result = transform(FIG2)
        assert result.soft_inits and result.soft_inits[0][0] == "fd"
        assert result.module.decl("fd").init is None

    def test_trap_free_program_has_no_tasks(self):
        result = transform("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """)
        assert not result.tasks
        assert not result.has_traps


class TestStateGraph:
    def test_minimal_state_count(self):
        result = transform("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """)
        # entry + update + final
        assert result.n_states == 3
        assert result.final_state == result.n_states - 1

    def test_trap_free_if_stays_inline(self):
        result = transform("""
            module m(input wire clock, input wire s);
              reg [7:0] n = 0;
              always @(posedge clock)
                if (s) n <= n + 1; else n <= n - 1;
            endmodule
        """)
        assert result.n_states == 3  # no split for task-free branches

    def test_task_in_branch_splits_states(self):
        result = transform("""
            module m(input wire clock, input wire s);
              reg [7:0] n = 0;
              always @(posedge clock)
                if (s) $display(n); else n <= n + 1;
            endmodule
        """)
        assert result.n_states > 3

    def test_loop_with_task_creates_back_edge_states(self):
        result = transform("""
            module m(input wire clock);
              integer i;
              always @(posedge clock)
                for (i = 0; i < 4; i = i + 1)
                  $display(i);
            endmodule
        """)
        assert result.n_states >= 5

    def test_nba_sites_created(self):
        result = transform(FIG2)
        assert len(result.nba_sites) == 1
        site = result.nba_sites[0]
        assert result.module.decl(site.we) is not None
        assert result.module.decl(site.wd) is not None

    def test_memory_nba_gets_address_register(self):
        result = transform("""
            module m(input wire clock);
              reg [7:0] mem [0:15];
              reg [3:0] i = 0;
              always @(posedge clock) begin
                mem[i] <= i;
                i <= i + 1;
              end
            endmodule
        """)
        mem_site = [s for s in result.nba_sites if s.wa is not None]
        assert mem_site, "dynamic-index NBA needs a __wa register"

    def test_state_overhead_accounting(self):
        result = transform(FIG2)
        assert result.state_overhead_bits() >= 64


class TestErrors:
    def test_instance_rejected(self):
        src = parse("""
            module c(input wire x); endmodule
            module t(input wire clock); c u(.x(clock)); endmodule
        """)
        with pytest.raises(TransformError):
            machinify(src.module("t"))

    def test_syscall_in_continuous_assign_rejected(self):
        with pytest.raises(TransformError):
            transform("""
                module m(input wire clock, output wire [31:0] y);
                  assign y = $random;
                endmodule
            """)
