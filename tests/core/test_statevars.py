"""State identification and volatility analysis tests (§5.3, §6.3)."""

from repro.core.statevars import analyze_state, task_nesting
from repro.verilog import flatten, parse, parse_module


def report_for(text):
    source = parse(text)
    return analyze_state(flatten(source, source.modules[-1].name))


class TestCaptureSet:
    def test_regs_and_memories_are_state(self):
        report = report_for("""
            module m(input wire clock);
              reg [7:0] r;
              integer i;
              reg [31:0] mem [0:3];
              wire [7:0] w = r + 1;
            endmodule
        """)
        names = {v.name for v in report.variables}
        assert names == {"r", "i", "mem"}

    def test_bit_accounting(self):
        report = report_for("""
            module m(input wire clock);
              reg [7:0] r;
              reg [31:0] mem [0:3];
            endmodule
        """)
        assert report.total_bits == 8 + 32 * 4

    def test_transform_internals_excluded(self):
        report = report_for("""
            module m(input wire clock);
              reg [7:0] __state;
              reg [7:0] user;
            endmodule
        """)
        assert {v.name for v in report.variables} == {"user"}


class TestVolatility:
    YIELDING = """
        module m(input wire clock);
          (* non_volatile *) reg [31:0] keep;
          reg [31:0] scratch;
          always @(posedge clock) begin
            scratch <= keep;
            $yield;
          end
        endmodule
    """

    def test_without_yield_everything_nonvolatile(self):
        report = report_for("""
            module m(input wire clock);
              reg [31:0] a;
              always @(posedge clock) a <= 1;
            endmodule
        """)
        assert not report.uses_yield
        assert report.volatile == []
        assert report.captured_bits == report.total_bits

    def test_with_yield_default_volatile(self):
        report = report_for(self.YIELDING)
        assert report.uses_yield
        assert {v.name for v in report.volatile} == {"scratch"}
        assert {v.name for v in report.non_volatile} == {"keep"}

    def test_volatile_fraction(self):
        report = report_for(self.YIELDING)
        assert abs(report.volatile_fraction - 0.5) < 1e-9

    def test_captured_names(self):
        report = report_for(self.YIELDING)
        assert report.captured_names() == ["keep"]


class TestTaskNesting:
    def test_no_tasks(self):
        mod = parse_module("""
            module m(input wire clock);
              reg a;
              always @(posedge clock) a <= 1;
            endmodule
        """)
        assert task_nesting(mod) == 0

    def test_top_level_task(self):
        mod = parse_module("""
            module m(input wire clock);
              always @(posedge clock) $display(1);
            endmodule
        """)
        assert task_nesting(mod) == 0

    def test_nested_task_depth(self):
        mod = parse_module("""
            module m(input wire clock, input wire a, input wire b);
              always @(posedge clock)
                if (a)
                  if (b)
                    case (a)
                      1: $display(1);
                    endcase
            endmodule
        """)
        assert task_nesting(mod) == 3

    def test_deepest_wins(self):
        mod = parse_module("""
            module m(input wire clock, input wire a);
              always @(posedge clock) begin
                $display(0);
                if (a) if (a) $display(1);
              end
            endmodule
        """)
        assert task_nesting(mod) == 2
