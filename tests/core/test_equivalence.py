"""Transform correctness: the transformed machine on the board must
compute exactly what the original program computes in the interpreter.

This is the soundness claim of §3 ("according to the semantics of the
original program"), checked end-to-end: same inputs, same file
contents, same visible outputs and final state — for programs covering
blocking/non-blocking mixes, branches, loops, memories, and blocking
mid-tick IO.
"""

import struct

import pytest

from repro.core import compile_program
from repro.fabric import DE10
from repro.interp import Simulator, TaskHost, VirtualFS
from repro.runtime import DirectBoardBackend, Runtime


def run_software(program, vfs, ticks):
    host = TaskHost(vfs=vfs)
    sim = Simulator(program.flat, host, env=program.env)
    for _ in range(ticks):
        if host.finished:
            break
        sim.tick()
    return sim, host


def run_hardware(program, vfs, ticks):
    runtime = Runtime(program, vfs=vfs)
    runtime.attach(DirectBoardBackend(DE10))
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(1)
    assert runtime.mode == "hardware"
    runtime.tick(ticks - 1)
    return runtime


def assert_equivalent(text, state_vars, ticks=24, vfs_files=None):
    program = compile_program(text)

    def make_vfs():
        vfs = VirtualFS()
        for path, data in (vfs_files or {}).items():
            vfs.add_file(path, data)
        return vfs

    sim, sw_host = run_software(program, make_vfs(), ticks)
    runtime = run_hardware(program, make_vfs(), ticks)
    for var in state_vars:
        assert runtime.engine.get(var) == sim.get(var), var
    assert runtime.host.display_log == sw_host.display_log
    return sim, runtime


class TestEquivalence:
    def test_counter(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [31:0] n = 0;
              always @(posedge clock) n <= n + 3;
            endmodule
        """, ["n"])

    def test_blocking_nonblocking_mix(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [15:0] a = 1;
              reg [15:0] b = 0;
              reg [15:0] c = 0;
              always @(posedge clock) begin
                a = a + 1;
                b <= a * 2;
                c = b + a;
              end
            endmodule
        """, ["a", "b", "c"])

    def test_branches(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [7:0] n = 0;
              reg [7:0] evens = 0;
              reg [7:0] odds = 0;
              always @(posedge clock) begin
                if (n[0])
                  odds <= odds + 1;
                else
                  evens <= evens + 1;
                n <= n + 1;
              end
            endmodule
        """, ["n", "evens", "odds"])

    def test_case_statement(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [1:0] s = 0;
              reg [15:0] acc = 0;
              always @(posedge clock) begin
                case (s)
                  2'd0: acc <= acc + 1;
                  2'd1: acc <= acc + 10;
                  2'd2: acc <= acc + 100;
                  default: acc <= acc + 1000;
                endcase
                s <= s + 1;
              end
            endmodule
        """, ["s", "acc"])

    def test_synthesizable_loop(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [31:0] total = 0;
              integer i;
              always @(posedge clock) begin
                for (i = 0; i < 5; i = i + 1)
                  total = total + i;
              end
            endmodule
        """, ["total"])

    def test_memory_traffic(self):
        sim, runtime = assert_equivalent("""
            module m(input wire clock);
              reg [7:0] mem [0:7];
              reg [2:0] wp = 0;
              reg [7:0] sum = 0;
              always @(posedge clock) begin
                mem[wp] <= wp * 5;
                sum <= sum + mem[wp];
                wp <= wp + 1;
              end
            endmodule
        """, ["wp", "sum"])
        slot = runtime.backend.board.slots[runtime.placement.engine_id]
        assert slot.sim.store.memories["mem"] == sim.store.memories["mem"]

    def test_two_always_blocks(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [7:0] p = 0;
              reg [7:0] q = 0;
              always @(posedge clock) p <= p + 1;
              always @(posedge clock) q <= p;
            endmodule
        """, ["p", "q"])

    def test_continuous_assigns_feed_core(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [7:0] n = 0;
              wire [7:0] next_n = n + 2;
              wire odd = next_n[0];
              reg [7:0] seen = 0;
              always @(posedge clock) begin
                n <= next_n;
                if (odd) seen <= seen + 1;
              end
            endmodule
        """, ["n", "seen"])

    def test_display_from_hardware(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [7:0] n = 0;
              always @(posedge clock) begin
                if (n[1:0] == 0) $display("n=%0d", n);
                n <= n + 1;
              end
            endmodule
        """, ["n"])

    def test_streaming_file_io(self):
        data = b"".join(struct.pack(">I", v) for v in range(1, 13))
        assert_equivalent("""
            module m(input wire clock);
              integer fd = $fopen("d.bin");
              reg [31:0] v = 0;
              reg [63:0] total = 0;
              always @(posedge clock) begin
                $fread(fd, v);
                if ($feof(fd)) begin
                  $display("%0d", total);
                  $finish(0);
                end else
                  total <= total + v;
              end
            endmodule
        """, ["total"], ticks=20, vfs_files={"d.bin": data})

    def test_mid_tick_dependency(self):
        """The result of a read is consumed in the SAME tick (§3.1)."""
        data = bytes([1, 2, 3, 4])
        assert_equivalent("""
            module m(input wire clock);
              integer fd = $fopen("d.bin");
              reg [31:0] c = 0;
              reg [31:0] low = 0;
              reg [31:0] high = 0;
              always @(posedge clock) begin
                c = $fgetc(fd);
                if ($feof(fd))
                  $finish(0);
                else if (c < 3)
                  low <= low + c;
                else
                  high <= high + c;
              end
            endmodule
        """, ["low", "high"], ticks=8, vfs_files={"d.bin": data})

    def test_loop_with_io_traps(self):
        data = b"".join(struct.pack(">H", v) for v in [5, 6, 7, 8])
        assert_equivalent("""
            module m(input wire clock);
              integer fd = $fopen("d.bin");
              reg [15:0] v = 0;
              reg [31:0] total = 0;
              integer k;
              always @(posedge clock) begin
                for (k = 0; k < 2; k = k + 1) begin
                  $fread(fd, v);
                  if (!$feof(fd))
                    total = total + v;
                end
                if ($feof(fd)) $finish(0);
              end
            endmodule
        """, ["total"], ticks=6, vfs_files={"d.bin": data})

    def test_random_stream_matches(self):
        """$random is serviced by the host in both worlds, so the
        deterministic stream must line up exactly."""
        assert_equivalent("""
            module m(input wire clock);
              reg [31:0] x = 0;
              reg [31:0] mix = 0;
              always @(posedge clock) begin
                x = $random;
                mix <= mix ^ x;
              end
            endmodule
        """, ["mix"], ticks=10)

    def test_inline_nba_invisible_until_tick_end(self):
        """Regression: an NBA in a trap-free branch must not become
        visible to statements after a later trap in the same tick."""
        assert_equivalent("""
            module m(input wire clock);
              reg [7:0] a = 0;
              reg [7:0] seen = 0;
              always @(posedge clock) begin
                if (a < 100)
                  a <= a + 1;
                $display("tick");
                seen <= a;
              end
            endmodule
        """, ["a", "seen"], ticks=6)

    def test_part_select_writes(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [31:0] word = 0;
              reg [3:0] n = 0;
              always @(posedge clock) begin
                word[7:0] <= n;
                word[15:8] <= n + 1;
                n <= n + 1;
              end
            endmodule
        """, ["word", "n"])

    def test_concat_lvalue_nba(self):
        assert_equivalent("""
            module m(input wire clock);
              reg [7:0] hi = 0;
              reg [7:0] lo = 0;
              reg [7:0] n = 1;
              always @(posedge clock) begin
                {hi, lo} <= {lo, n};
                n <= n + 1;
              end
            endmodule
        """, ["hi", "lo", "n"])
