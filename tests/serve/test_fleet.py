"""Fleet placement, pooling, rebalancing, recovery and telemetry."""

import asyncio

from repro.compiler.service import CompilerService
from repro.fabric.errors import FabricError
from repro.hypervisor import Hypervisor, telemetry_snapshot
from repro.interp.compile.batch import HAVE_NUMPY
from repro.serve import Fleet, FleetConfig, ServeConfig, ServeFrontend

from serve_helpers import APP, FAST, make_fleet
from test_preemption import assert_twin, solo_run


def two_board_fleet(**config):
    """Two FAST boards with *private* compiler services.

    Explicit stores, so warmth stays per-board even when
    ``REPRO_COMPILER_CACHE=1`` makes the default store process-wide.
    """
    from repro.compiler.artifacts import ArtifactStore

    boards = [Hypervisor(FAST, compiler=CompilerService(ArtifactStore()))
              for _ in range(2)]
    return Fleet(boards, FleetConfig(**config))


class TestPlacement:
    def test_warm_board_wins_placement(self):
        fleet = two_board_fleet(board_capacity=2, cohorts=False)
        cold, warm = fleet.supervisor.hypervisors
        # Pre-build the full artifact chain on one board's service.
        program = warm.compiler.compile_program(APP)
        warm.compiler.codegen(program.flat, digest=program.digest)
        # codegen() lands in the "event" or "codegen" kind depending on
        # the ambient REPRO_SIM_EVENT; either makes the board warm.
        warm_w = warm.compiler.warmth(program.digest)
        cold_w = cold.compiler.warmth(program.digest)
        assert warm_w["codegen"] or warm_w["event"]
        assert not (cold_w["codegen"] or cold_w["event"])

        fleet.admit_job("hot", APP, program.digest)
        assert fleet.supervisor.tenants["hot"].host is warm

    def test_equal_warmth_tie_breaks_to_least_loaded(self, service):
        # One shared service: every board is equally warm, so load
        # decides and consecutive jobs spread across the fleet.
        fleet = make_fleet(service, boards=2, board_capacity=4,
                           cohorts=False)
        digest = service.compile_program(APP).digest
        fleet.admit_job("a", APP, digest)
        first = fleet.supervisor.tenants["a"].host
        fleet.admit_job("b", APP, digest)
        assert fleet.supervisor.tenants["b"].host is not first

    def test_capacity_overflow_goes_to_software(self, service):
        fleet = make_fleet(service, boards=1, board_capacity=1,
                           cohorts=False)
        digest = service.compile_program(APP).digest
        assert fleet.admit_job("one", APP, digest) == "de10"
        assert fleet.admit_job("two", APP, digest) == "software"
        assert fleet.stats()["placement"]["software"] == 1

    def test_same_digest_pools_onto_software(self, service):
        """A live software tenant of the digest beats a free board slot."""
        if not HAVE_NUMPY:
            import pytest

            pytest.skip("pooling is a cohort optimization")
        fleet = make_fleet(service, boards=1, board_capacity=1,
                           cohorts=True)
        digest = service.compile_program(APP).digest
        assert fleet.admit_job("one", APP, digest) == "de10"
        assert fleet.admit_job("two", APP, digest) == "software"
        fleet.release("one")  # the board slot is free again...
        # ...but the third same-digest job pools with "two" instead.
        assert fleet.admit_job("three", APP, digest) == "software"


class TestRebalance:
    def test_rebalance_moves_one_hot_tenant(self, service):
        fleet = make_fleet(service, boards=2, board_capacity=4,
                           rebalance_threshold=2, cohorts=False)
        digest = service.compile_program(APP).digest
        hot, cool = fleet.supervisor.hypervisors
        for i in range(3):
            fleet.supervisor.admit(f"t{i}", APP, host=hot)
        assert (fleet.board_load(hot), fleet.board_load(cool)) == (3, 0)

        moved = fleet.rebalance()
        assert len(moved) == 1
        assert (fleet.board_load(hot), fleet.board_load(cool)) == (2, 1)
        assert fleet.supervisor.migrations
        del digest

    def test_balanced_fleet_stays_put(self, service):
        fleet = make_fleet(service, boards=2, board_capacity=4,
                           rebalance_threshold=2, cohorts=False)
        a, b = fleet.supervisor.hypervisors
        fleet.supervisor.admit("a", APP, host=a)
        fleet.supervisor.admit("b", APP, host=b)
        assert fleet.rebalance() == []


class TestRecovery:
    def test_board_death_mid_serve_recovers_tenants(self, service):
        """A dying board's tenants finish bit-identically elsewhere."""
        fleet = make_fleet(service, boards=2, board_capacity=2,
                           cohorts=False, faults=("board_death@2",))
        config = ServeConfig(max_running=4, quantum_ticks=4)
        twin = solo_run(APP)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [await fe.submit(APP, name=f"rv-{i}")
                           for i in range(4)]
                results = [await h.result() for h in handles]
            assert fleet.supervisor.stats()["quarantines"] >= 1
            assert sum(r.recoveries for r in results) >= 1
            for result in results:
                assert result.status == "finished"
                assert_twin(result, twin)

        asyncio.run(main())


class TestTelemetry:
    def test_frontend_stats_shape(self, service):
        fleet = make_fleet(service, boards=2)
        config = ServeConfig(max_running=4)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handle = await fe.submit(APP, ticks=4, name="t")
                await handle.result()
                return fe.stats()

        stats = asyncio.run(main())
        assert set(stats) >= {"admission", "slicer", "fleet", "hypervisors",
                              "artifacts", "placement", "retired"}
        assert stats["fleet"]["hypervisors"] == 2
        assert len(stats["hypervisors"]) == 2
        assert stats["retired"] == 1
        assert stats["placement"]["hardware"] \
            + stats["placement"]["software"] == 1

    def test_telemetry_snapshot_unifies_layers(self, service):
        fleet = make_fleet(service, boards=2)
        digest = service.compile_program(APP).digest
        fleet.admit_job("x", APP, digest)
        snap = telemetry_snapshot(supervisor=fleet.supervisor,
                                  store=service.store)
        assert set(snap) == {"fleet", "hypervisors", "artifacts"}
        assert snap["fleet"]["tenants"] == 1
        assert len(snap["hypervisors"]) == 2
        # One shared store reported once; per-kind rows all carry the
        # derived hit rate.
        assert len(snap["artifacts"]) == 1
        for row in snap["artifacts"][0].values():
            assert set(row) >= {"entries", "hits", "misses", "evictions",
                                "hit_rate"}

    def test_dead_board_does_not_block_stats(self, service):
        fleet = make_fleet(service, boards=2, board_capacity=2,
                           cohorts=False, faults=("board_death@1",))
        digest = service.compile_program(APP).digest
        fleet.admit_job("v", APP, digest)
        try:
            for _ in range(8):
                fleet.advance("v", 4)
        except FabricError:
            pass  # stats below must still work
        stats = fleet.stats()
        assert stats["fleet"]["hypervisors"] == 2
