"""Fixtures for the serving-layer tests (stdlib-only)."""

import pytest

from repro.compiler.service import CompilerService


@pytest.fixture()
def service():
    return CompilerService()
