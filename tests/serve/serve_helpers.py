"""Shared helpers for the serving-layer tests.

Everything here is stdlib-only: the serving layer must degrade to
scalar engines when NumPy is absent, so this module may not import it.
Cohort-specific tests guard themselves with ``HAVE_NUMPY``.
"""

import dataclasses

from repro.fabric.device import DE10
from repro.hypervisor import Hypervisor
from repro.serve import Fleet, FleetConfig

#: seconds-scale device so software→hardware transitions happen in-test
FAST = dataclasses.replace(DE10, compile_seconds=0.5, reconfig_seconds=0.01)

#: counter app with output and a bounded life — the serve tests' tenant
#: (the combinational mix keeps it inside the vectorizable subset, so
#: cohort tests can form lanes from it)
APP = """
module app(input wire clock);
  reg [31:0] n;
  reg [31:0] acc;
  wire [31:0] twist;
  assign twist = acc ^ (n << 3);
  initial n = 0;
  initial acc = 1;
  always @(posedge clock) begin
    n <= n + 1;
    acc <= acc + (acc << 1) + n + (twist & 32'h f);
    if (n % 7 == 0) $display("n=%0d acc=%0d", n, acc);
    if (n == 40) $finish;
  end
endmodule
"""


#: the same counter with no $finish — for cancellation/starvation tests
APP_FOREVER = APP.replace("  if (n == 40) $finish;\n", "")


def make_fleet(service, boards=2, faults=(), **config):
    """A fleet of FAST boards sharing *service*'s artifact store."""
    from repro.fabric import FaultPlan

    hypervisors = [Hypervisor(FAST, compiler=service) for _ in range(boards)]
    for hv, spec in zip(hypervisors, faults):
        if spec:
            hv.board.faults = FaultPlan(spec, seed=1)
    return Fleet(hypervisors, FleetConfig(**config))
