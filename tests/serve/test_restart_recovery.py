"""Process-restart recovery: kill the serving process, recover, compare.

The durability claim of the serving layer: a frontend hard-stopped
mid-flight and rebuilt from nothing but its on-disk artifact directory
and tenant journal restores every checkpointed tenant bit-identically —
the same ``$display`` trace (exactly once, history included), the same
architectural state, the same tick count as an uninterrupted twin.
"""

import asyncio

import pytest

from repro.compiler import ArtifactStore, CompilerService, DiskArtifactStore
from repro.hypervisor import RecoveryError, TenantJournal
from repro.serve import ServeConfig, ServeFrontend

from serve_helpers import APP, make_fleet

PRIORITIES = ("high", "normal", "low")


def build_frontend(art_dir, jnl_dir, max_running=6):
    """One serving 'process' over the durable directories."""
    service = CompilerService(ArtifactStore(disk=DiskArtifactStore(art_dir)))
    fleet = make_fleet(service, boards=2)
    fleet.supervisor.checkpoint_every = 4
    config = ServeConfig(max_running=max_running, quantum_ticks=5,
                         quiescence_every=64)
    return ServeFrontend(fleet, config, journal=TenantJournal(jnl_dir))


async def submit_mixed(frontend, n):
    handles = {}
    for i in range(n):
        handles[f"job-{i}"] = await frontend.submit(
            APP, ticks=60, priority=PRIORITIES[i % 3],
            tenant=f"team-{i % 4}", name=f"job-{i}")
    return handles


async def kill_mid_flight(frontend, min_ticks=20):
    """Run until some tenant passes *min_ticks*, then die hard."""
    for _ in range(200_000):
        tenants = frontend.fleet.supervisor.tenants.values()
        if any(t.runtime.ticks >= min_ticks for t in tenants):
            break
        await asyncio.sleep(0)
    frontend._task.cancel()
    try:
        await frontend._task
    except asyncio.CancelledError:
        pass
    frontend.journal.close()


class TestKillTheProcess:
    N = 32

    def test_32_tenants_bit_identical_after_restart(self, tmp_path):
        async def interrupted():
            frontend = build_frontend(tmp_path / "art", tmp_path / "jnl")
            await submit_mixed(frontend, self.N)
            await kill_mid_flight(frontend)

            revived = build_frontend(tmp_path / "art", tmp_path / "jnl")
            handles = await revived.recover()
            assert sorted(handles) == [f"job-{i}" for i in
                                       sorted(range(self.N), key=str)]
            assert not revived.recovery_errors
            results = {name: await handle.result()
                       for name, handle in handles.items()}
            stats = revived.stats()
            await revived.close()
            return results, stats

        async def uninterrupted():
            frontend = build_frontend(tmp_path / "art2", tmp_path / "jnl2")
            handles = await submit_mixed(frontend, self.N)
            results = {name: await handle.result()
                       for name, handle in handles.items()}
            await frontend.close()
            return results

        got, stats = asyncio.run(interrupted())
        want = asyncio.run(uninterrupted())
        for name in want:
            assert got[name].display == want[name].display, name
            assert got[name].state == want[name].state, name
            assert got[name].ticks == want[name].ticks, name
            assert got[name].finished == want[name].finished, name
            assert got[name].finish_code == want[name].finish_code, name
        # Books balance: every recovered slot was released.
        admission = stats["admission"]
        assert admission["recovered"] > 0
        placement = stats["placement"]
        assert placement["readmissions"] == admission["recovered"]

    def test_recovered_slots_release_cleanly(self, tmp_path):
        async def main():
            frontend = build_frontend(tmp_path / "art", tmp_path / "jnl")
            await submit_mixed(frontend, 8)
            await kill_mid_flight(frontend, min_ticks=10)

            revived = build_frontend(tmp_path / "art", tmp_path / "jnl")
            handles = await revived.recover()
            for handle in handles.values():
                await handle.result()
            await revived.close()
            admission = revived.admission.stats()
            assert admission["running"] == 0
            assert admission["queued"] == 0
            assert admission["tenants_in_flight"] == 0

        asyncio.run(main())


class TestRecoveryEdges:
    def test_queued_never_started_reruns_from_source(self, tmp_path):
        async def main():
            frontend = build_frontend(tmp_path / "art", tmp_path / "jnl",
                                      max_running=2)
            # Submit without ever letting the scheduler dispatch, then
            # die: the journal holds job records but no admits.
            handles = await submit_mixed(frontend, 4)
            frontend._task.cancel()
            try:
                await frontend._task
            except asyncio.CancelledError:
                pass
            frontend.journal.close()
            del handles

            revived = build_frontend(tmp_path / "art", tmp_path / "jnl")
            recovered = await revived.recover()
            assert len(recovered) == 4
            for name, handle in recovered.items():
                result = await handle.result()
                assert result.finished and result.finish_code == 0
                assert handle.priority == PRIORITIES[int(name[-1]) % 3]
            await revived.close()

        asyncio.run(main())

    def test_unrecoverable_tenant_fails_typed_and_releases_slot(
            self, tmp_path):
        async def main():
            frontend = build_frontend(tmp_path / "art", tmp_path / "jnl")
            await submit_mixed(frontend, 2)
            await kill_mid_flight(frontend, min_ticks=10)

            revived = build_frontend(tmp_path / "art", tmp_path / "jnl")
            # Every snapshot is destroyed: in-flight tenants that were
            # already placed cannot be restored.
            revived.journal.drop_snapshots("job-0")
            revived.journal.drop_snapshots("job-1")
            handles = await revived.recover()
            failed = dict(revived.recovery_errors)
            for name, err in failed.items():
                assert isinstance(err, RecoveryError)
                assert err.tenant == name
                with pytest.raises(RecoveryError):
                    await handles[name].result()
            # Survivors (queued-never-admitted) still complete.
            for name, handle in handles.items():
                if name not in failed:
                    assert (await handle.result()).finished
            await revived.close()
            admission = revived.admission.stats()
            assert admission["running"] == 0
            assert admission["tenants_in_flight"] == 0
            # A second replay must not resurrect the failed tenants:
            # their terminal records were journaled.
            image = revived.journal.replay()
            assert all(t.name not in failed for t in image.in_flight())

        asyncio.run(main())

    def test_recover_requires_a_journal(self):
        async def main():
            service = CompilerService(ArtifactStore())
            frontend = ServeFrontend(make_fleet(service, boards=1))
            with pytest.raises(ValueError):
                await frontend.recover()

        asyncio.run(main())

    def test_recover_is_idempotent_per_name(self, tmp_path):
        async def main():
            frontend = build_frontend(tmp_path / "art", tmp_path / "jnl")
            await submit_mixed(frontend, 2)
            await kill_mid_flight(frontend, min_ticks=10)

            revived = build_frontend(tmp_path / "art", tmp_path / "jnl")
            first = await revived.recover()
            second = await revived.recover()
            assert second == {}  # every name already known
            for handle in first.values():
                await handle.result()
            await revived.close()

        asyncio.run(main())
