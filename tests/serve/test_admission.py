"""Admission control and backpressure: budgets, ordering, cancellation."""

import asyncio

import pytest

from repro.serve import (
    AdmissionError, QueueFullError, ServeConfig, ServeFrontend,
    TenantBudgetError, UnknownDigestError,
)

from serve_helpers import APP, APP_FOREVER, make_fleet


def serve(service, **cfg):
    cfg.setdefault("max_running", 4)
    return ServeFrontend(make_fleet(service, boards=1, cohorts=False),
                         ServeConfig(**cfg))


class TestBudgets:
    def test_queue_full_rejects_typed(self, service):
        async def main():
            async with serve(service, max_running=1, max_queue=2) as fe:
                await fe.submit(APP, ticks=2, name="a")
                await fe.submit(APP, ticks=2, name="b")
                with pytest.raises(QueueFullError):
                    await fe.submit(APP, ticks=2, name="c")
                assert fe.admission.stats()["rejected"] == 1

        asyncio.run(main())

    def test_per_tenant_budget_rejects_typed(self, service):
        async def main():
            async with serve(service, per_tenant=2, max_queue=16) as fe:
                await fe.submit(APP, ticks=2, tenant="alice", name="a1")
                await fe.submit(APP, ticks=2, tenant="alice", name="a2")
                with pytest.raises(TenantBudgetError):
                    await fe.submit(APP, ticks=2, tenant="alice", name="a3")
                # Another principal is unaffected by alice's budget.
                await fe.submit(APP, ticks=2, tenant="bob", name="b1")

        asyncio.run(main())

    def test_admission_error_is_a_policy_decision(self):
        from repro.fabric.errors import (
            FabricError, PersistentFabricError, TransientFabricError,
        )

        assert issubclass(AdmissionError, FabricError)
        assert not issubclass(AdmissionError, TransientFabricError)
        assert not issubclass(AdmissionError, PersistentFabricError)

    def test_rejected_submission_takes_no_slots(self, service):
        async def main():
            async with serve(service, per_tenant=1) as fe:
                await fe.submit(APP, ticks=2, tenant="t", name="ok")
                with pytest.raises(AdmissionError):
                    await fe.submit(APP, ticks=2, tenant="t", name="no")
                stats = fe.admission.stats()
                assert stats["admitted"] == 1
                assert stats["queued"] + stats["running"] <= 1

        asyncio.run(main())


class TestOrdering:
    def test_queued_jobs_start_in_priority_order(self, service):
        async def main():
            async with serve(service, max_running=1, max_queue=16) as fe:
                # submit() never awaits after validation, so all four
                # jobs are queued before the scheduler's first turn.
                first = await fe.submit(APP, ticks=2, priority="normal",
                                        name="first")
                low = await fe.submit(APP, ticks=2, priority="low", name="lo")
                norm = await fe.submit(APP, ticks=2, priority="normal",
                                       name="mid")
                high = await fe.submit(APP, ticks=2, priority="high",
                                       name="hi")
                await asyncio.gather(first.result(), low.result(),
                                     norm.result(), high.result())
                assert fe.started_order == ["hi", "first", "mid", "lo"]

        asyncio.run(main())

    def test_fifo_within_one_class(self, service):
        async def main():
            async with serve(service, max_running=1, max_queue=16) as fe:
                handles = [await fe.submit(APP, ticks=2, name=f"j{i}")
                           for i in range(4)]
                await asyncio.gather(*(h.result() for h in handles))
                assert fe.started_order == ["j0", "j1", "j2", "j3"]

        asyncio.run(main())


class TestCancellation:
    def test_cancel_queued_releases_slots(self, service):
        async def main():
            async with serve(service, max_running=1, per_tenant=1,
                             max_queue=16) as fe:
                blocker = await fe.submit(APP, ticks=30, tenant="z",
                                          name="blocker")
                queued = await fe.submit(APP, ticks=2, tenant="t", name="q")
                assert queued.status() == "queued"
                assert queued.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await queued.result()
                assert queued.status() == "cancelled"
                # The released per-tenant slot admits a resubmission.
                retry = await fe.submit(APP, ticks=2, tenant="t", name="q2")
                result = await retry.result()
                assert result.status == "completed"
                await blocker.result()

        asyncio.run(main())

    def test_cancel_running_releases_at_quiescence(self, service):
        async def main():
            async with serve(service, max_running=1, quantum_ticks=4,
                             max_queue=16) as fe:
                victim = await fe.submit(APP_FOREVER, ticks=10_000,
                                         name="victim")
                # Let the scheduler start (and run a few turns of) it.
                for _ in range(6):
                    await asyncio.sleep(0)
                assert victim.status() in ("running", "preempted")
                assert victim.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await victim.result()
                # Its running slot came back: a new job starts and ends.
                after = await fe.submit(APP, ticks=2, name="after")
                assert (await after.result()).status == "completed"
                assert fe.admission.stats()["running"] == 0

        asyncio.run(main())

    def test_cancel_after_done_returns_false(self, service):
        async def main():
            async with serve(service) as fe:
                handle = await fe.submit(APP, ticks=2, name="done")
                await handle.result()
                assert not handle.cancel()

        asyncio.run(main())


class TestSubmitSurface:
    def test_unknown_digest_rejected(self, service):
        async def main():
            async with serve(service) as fe:
                with pytest.raises(UnknownDigestError):
                    await fe.submit(digest="feedfacecafe", name="nope")

        asyncio.run(main())

    def test_submit_by_registered_digest(self, service):
        async def main():
            async with serve(service) as fe:
                digest = fe.register(APP)
                handle = await fe.submit(digest=digest, ticks=3, name="byd")
                result = await handle.result()
                assert result.status == "completed"
                assert result.ticks == 3

        asyncio.run(main())

    def test_run_until_finish(self, service):
        async def main():
            async with serve(service) as fe:
                handle = await fe.submit(APP, name="runout")
                result = await handle.result()
                assert result.status == "finished"
                assert result.finished
                assert result.ticks == 41  # $finish fires when n==40

        asyncio.run(main())

    def test_display_streams_while_running(self, service):
        async def main():
            async with serve(service, quantum_ticks=4) as fe:
                handle = await fe.submit(APP, name="streamer")
                streamed = [line async for line in handle]
                result = await handle.result()
                assert tuple(streamed) == result.display
                assert streamed[0] == "n=0 acc=1"

        asyncio.run(main())

    def test_status_lifecycle(self, service):
        async def main():
            async with serve(service, max_running=1, quantum_ticks=2,
                             max_queue=16) as fe:
                first = await fe.submit(APP, ticks=12, name="one")
                second = await fe.submit(APP, ticks=2, name="two")
                assert first.status() == "queued"
                assert second.status() == "queued"
                seen = set()
                while not first.done:
                    seen.add(first.status())
                    await asyncio.sleep(0)
                # "running" only exists inside a scheduler turn; between
                # turns a sliced job is observably "preempted".
                assert "preempted" in seen  # quantum 2 < 12 ticks
                assert (await first.result()).status == "completed"

        asyncio.run(main())
