"""Preemption correctness: sliced tenants are bit-identical to twins.

The serving layer's core transparency claim: a tenant the slicer
suspends and resumes — on the same engine, on a migrated board, or
re-joined into a vector cohort — produces exactly the ``$display``
output and architectural state of an unpreempted solo run.
"""

import asyncio

import pytest

from repro.compiler.service import CompilerService
from repro.fuzz.oracle import state_names
from repro.interp.compile.batch import HAVE_NUMPY
from repro.runtime.runtime import Runtime
from repro.serve import ServeConfig, ServeFrontend

from serve_helpers import APP, make_fleet


def solo_run(source, ticks=None):
    """The unpreempted twin: one private runtime, run to the end."""
    runtime = Runtime(source, name="twin", compiler=CompilerService())
    while not runtime.finished and (ticks is None or runtime.ticks < ticks):
        budget = 64 if ticks is None else min(64, ticks - runtime.ticks)
        runtime.tick(budget)
    return (
        tuple(runtime.host.display_log),
        runtime.engine.snapshot(state_names(runtime.program.flat)),
        runtime.ticks,
    )


def assert_twin(result, twin):
    display, state, ticks = twin
    assert result.display == display
    assert result.state == state
    assert result.ticks == ticks


class TestPreemptionBitIdentity:
    def test_sliced_software_tenant_matches_twin(self, service):
        """Suspend/resume on the same engine under a tiny quantum."""
        fleet = make_fleet(service, boards=1, board_capacity=0,
                           cohorts=False)
        config = ServeConfig(max_running=8, quantum_ticks=2,
                             priorities={"normal": 1.0})
        twin = solo_run(APP)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [await fe.submit(APP, name=f"job-{i}")
                           for i in range(4)]
                results = [await h.result() for h in handles]
            for result in results:
                assert result.status == "finished"
                assert result.preemptions > 0
                assert_twin(result, twin)

        asyncio.run(main())

    def test_sliced_hardware_tenant_matches_twin(self, service):
        """Preemption across the software→hardware transition."""
        fleet = make_fleet(service, boards=2, board_capacity=2,
                           cohorts=False)
        config = ServeConfig(max_running=4, quantum_ticks=4)
        twin = solo_run(APP)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [await fe.submit(APP, name=f"hw-{i}")
                           for i in range(4)]
                results = [await h.result() for h in handles]
            assert any(r.preemptions > 0 for r in results)
            for result in results:
                assert_twin(result, twin)

        asyncio.run(main())

    def test_migrated_tenant_matches_twin(self, service):
        """A tenant rebalanced onto a board added mid-run."""
        fleet = make_fleet(service, boards=1, board_capacity=4,
                           rebalance_threshold=1, cohorts=False)
        config = ServeConfig(max_running=4, quantum_ticks=4,
                             quiescence_every=1)
        twin = solo_run(APP)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [await fe.submit(APP, name=f"mig-{i}")
                           for i in range(3)]
                # Grow the fleet while the jobs are mid-flight; the
                # next quiescence sweep rebalances onto the new board.
                from repro.hypervisor import Hypervisor

                from serve_helpers import FAST

                fleet.add_board(Hypervisor(FAST, compiler=service))
                results = [await h.result() for h in handles]
            assert sum(r.migrations for r in results) >= 1
            assert fleet.supervisor.migrations
            for result in results:
                assert_twin(result, twin)

        asyncio.run(main())

    @pytest.mark.skipif(not HAVE_NUMPY, reason="cohorts need NumPy")
    def test_cohort_joined_tenant_matches_twin(self, service):
        """Same-digest tenants vectorized mid-run, then extracted."""
        fleet = make_fleet(service, boards=1, board_capacity=0,
                           cohorts=True, cohort_min_size=2)
        config = ServeConfig(max_running=8, quantum_ticks=4,
                             quiescence_every=1,
                             priorities={"normal": 1.0})
        twin = solo_run(APP)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [await fe.submit(APP, name=f"coh-{i}")
                           for i in range(4)]
                results = [await h.result() for h in handles]
                formed = fe.stats()["fleet"]["cohorts"]["formed"]
            assert formed >= 1
            for result in results:
                assert result.status == "finished"
                assert_twin(result, twin)

        asyncio.run(main())

    @pytest.mark.skipif(not HAVE_NUMPY, reason="cohorts need NumPy")
    def test_cohort_member_extracted_by_cancel_leaves_rest_identical(
            self, service):
        """Cancelling one member never perturbs the survivors."""
        fleet = make_fleet(service, boards=1, board_capacity=0,
                           cohorts=True)
        config = ServeConfig(max_running=8, quantum_ticks=4,
                             quiescence_every=1,
                             priorities={"normal": 1.0})
        twin = solo_run(APP)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [await fe.submit(APP, name=f"cx-{i}")
                           for i in range(4)]
                # Let the cohort form, then cancel one member.
                for _ in range(20):
                    await asyncio.sleep(0)
                handles[0].cancel()
                results = [await h.result() for h in handles[1:]]
                try:
                    await handles[0].result()
                except asyncio.CancelledError:
                    pass
            for result in results:
                assert_twin(result, twin)

        asyncio.run(main())

    def test_checkpoint_on_preempt_keeps_ring_fresh(self, service):
        """Every preemption leaves a restore point at the turn boundary."""
        fleet = make_fleet(service, boards=1, board_capacity=0,
                           cohorts=False)
        config = ServeConfig(max_running=2, quantum_ticks=4,
                             checkpoint_on_preempt=True,
                             priorities={"normal": 1.0})

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [await fe.submit(APP, name=f"ck-{i}")
                           for i in range(2)]
                for h in handles:
                    await h.result()
                ring = fleet.supervisor.ring.stats()
            assert ring["saved"] >= 4  # baselines + preemption points

        asyncio.run(main())
