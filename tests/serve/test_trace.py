"""The seeded Poisson arrival-trace generator, and a trace served e2e."""

import asyncio

from repro.harness.common import (
    DEFAULT_PRIORITY_MIX, DEFAULT_SERVE_MIX, arrival_trace,
)
from repro.serve import ServeConfig, ServeFrontend

from serve_helpers import make_fleet


class TestTraceGenerator:
    def test_same_seed_replays_identically(self):
        assert arrival_trace(7, 32) == arrival_trace(7, 32)

    def test_different_seeds_differ(self):
        assert arrival_trace(7, 32) != arrival_trace(8, 32)

    def test_trace_shape(self):
        trace = arrival_trace(3, 64, rate_hz=100.0, ticks_range=(8, 48))
        assert len(trace) == 64
        assert all(a.at <= b.at for a, b in zip(trace, trace[1:]))
        families = {name for name, _ in DEFAULT_SERVE_MIX}
        priorities = {name for name, _ in DEFAULT_PRIORITY_MIX}
        for arrival in trace:
            family = arrival.design.split("-")[0]
            assert family in families
            assert arrival.priority in priorities
            assert 8 <= arrival.ticks <= 48
            assert arrival.source
        # The mix's few-designs × many-instances shape: far fewer
        # distinct designs than arrivals.
        assert len({a.design for a in trace}) < len(trace) // 2

    def test_fuzz_pool_bounds_distinct_designs(self):
        trace = arrival_trace(5, 64, mix=(("fuzz", 1.0),), fuzz_pool=3)
        assert {a.design for a in trace} <= {"fuzz-0", "fuzz-1", "fuzz-2"}

    def test_trace_serves_end_to_end(self, service):
        """A small trace runs through the frontend to completion."""
        trace = arrival_trace(17, 10, mix=(("fuzz", 1.0),), fuzz_pool=2,
                              ticks_range=(4, 12))
        fleet = make_fleet(service, boards=2, board_capacity=2)
        config = ServeConfig(max_running=16, quantum_ticks=8)

        async def main():
            async with ServeFrontend(fleet, config) as fe:
                handles = [
                    await fe.submit(a.source, ticks=a.ticks,
                                    priority=a.priority, tenant=a.tenant,
                                    name=a.name)
                    for a in trace
                ]
                return [await h.result() for h in handles]

        results = asyncio.run(main())
        assert len(results) == 10
        for arrival, result in zip(trace, results):
            assert result.status in ("completed", "finished")
            assert result.ticks <= arrival.ticks
