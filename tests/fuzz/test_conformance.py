"""Differential conformance fuzzing: generator, oracle, shrinker, corpus.

Tier-1 runs the fast pieces (generator invariants, a small fixed-seed
smoke sweep, the committed corpus).  The long campaign is marked
``fuzz`` and deselected by default — run it with ``-m fuzz`` or via
``python -m repro.fuzz``.
"""

import glob
import os
import re

import pytest

from repro.compiler import ArtifactStore, CompilerService
from repro.fuzz import (
    GrammarWeights, ModuleGenerator, check, generate, shrink_module,
    state_names,
)
from repro.fuzz.shrink import oracle_predicate, write_repro
from repro.verilog import ast, parse, print_module

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")


def _corpus_files():
    return sorted(glob.glob(os.path.join(CORPUS_DIR, "*.v")))


def _corpus_ticks(text: str) -> int:
    match = re.search(r"//\s*fuzz-ticks:\s*(\d+)", text)
    return int(match.group(1)) if match else 16


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = ModuleGenerator(7).generate()
        b = ModuleGenerator(7).generate()
        assert a.source == b.source
        assert a.ticks == b.ticks

    def test_distinct_across_seeds(self):
        sources = {generate(seed).source for seed in range(8)}
        assert len(sources) == 8

    def test_programs_are_well_formed(self):
        """Every generated module parses back, prints stably, and
        survives the full §3 pipeline (flatten/widths/machinify)."""
        service = CompilerService(ArtifactStore())
        for seed in range(12):
            program = generate(seed)
            printed = program.source
            reparsed = parse(printed).module(program.module.name)
            assert print_module(reparsed) == printed
            compiled = service.compile_program(reparsed)
            assert compiled.transform.n_states >= 1
            assert state_names(compiled.flat)

    def test_weights_bias_production(self):
        quiet = GrammarWeights(w_display=0.0, finish_prob=0.0,
                               initial_prob=0.0)
        for seed in range(6):
            assert "$display" not in generate(seed, quiet).source
            assert "$finish" not in generate(seed, quiet).source


class TestSmokeConformance:
    def test_fixed_seed_sweep(self):
        """A small fixed-seed sweep through all four paths — the tier-1
        face of the acceptance run (``repro.fuzz --seed 0 --n 100``)."""
        service = CompilerService()
        for seed in range(6):
            program = generate(seed)
            report = check(program.module, min(program.ticks, 16),
                           service=service, lifecycle_seed=seed,
                           label=f"seed {seed}")
            assert report.ok, report.describe()


class TestCorpus:
    @pytest.mark.parametrize(
        "path", _corpus_files(),
        ids=[os.path.basename(p) for p in _corpus_files()])
    def test_corpus_conformance(self, path):
        with open(path) as handle:
            text = handle.read()
        source = parse(text)
        module = source.modules[-1]
        report = check(module, _corpus_ticks(text),
                       label=os.path.basename(path))
        name = os.path.basename(path)
        if name.startswith("xfail_"):
            if report.ok:
                pytest.fail(f"{name} now conforms — promote it to a "
                            f"regression by dropping the xfail_ prefix")
            pytest.xfail(f"documented divergence: {report.describe()}")
        assert report.ok, report.describe()

    def test_no_unresolved_failures_committed(self):
        """fail_* repros are CI artifacts, not permanent residents."""
        stale = [os.path.basename(p) for p in _corpus_files()
                 if os.path.basename(p).startswith("fail_")]
        assert not stale, (f"{stale}: fix and rename, or promote to "
                           f"xfail_* with an explanation")


class TestShrinker:
    def _predicate_contains_display(self, module):
        return "$display" in print_module(module)

    def test_minimizes_under_structural_predicate(self):
        program = generate(3, GrammarWeights(w_display=3.0))
        assert self._predicate_contains_display(program.module)
        shrunk, tests = shrink_module(program.module,
                                      self._predicate_contains_display,
                                      budget=600)
        assert self._predicate_contains_display(shrunk)
        assert tests > 0
        assert len(shrunk.items) < len(program.module.items)
        # Greedy fixpoint: nothing but the port decl and one carrier
        # of the $display should survive a structural predicate.
        assert len(shrunk.items) <= 3

    def test_crashing_predicate_counts_as_false(self):
        module = generate(0).module

        def explosive(candidate):
            raise RuntimeError("boom")

        shrunk, tests = shrink_module(module, explosive, budget=50)
        assert shrunk is module  # nothing accepted, nothing lost
        assert tests == 50  # every candidate was tried and rejected

    def test_oracle_predicate_requires_original_signature(self):
        """A conformant program is not 'failing' under the oracle
        predicate, whatever shape it has."""
        predicate = oracle_predicate(8, ("interp", "compiled"),
                                     lifecycle_seed=0)
        assert predicate(generate(0).module) is False

    def test_write_repro_round_trips(self, tmp_path):
        program = generate(5)
        path = write_repro(str(tmp_path), "fail_seed5", program.module,
                           "demo divergence", seed=5, ticks=9)
        with open(path) as handle:
            text = handle.read()
        assert "// seed: 5" in text
        assert "// fuzz-ticks: 9" in text
        reparsed = parse(text).module(program.module.name)
        assert print_module(reparsed) == program.source


@pytest.mark.fuzz
class TestLongCampaign:
    def test_hundred_seed_campaign(self):
        """The acceptance run: 100 programs, bit-identical everywhere."""
        from repro.fuzz.__main__ import main

        assert main(["--seed", "0", "--n", "100",
                     "--corpus-dir", "tests/corpus"]) == 0
