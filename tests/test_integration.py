"""End-to-end integration scenarios across the whole stack."""

import struct

import pytest

from repro.bench import bitcoin, datagen, regex
from repro.core import compile_program
from repro.fabric import DE10, F1
from repro.hypervisor import Hypervisor, migrate
from repro.interp import VirtualFS
from repro.runtime import DirectBoardBackend, Runtime


def to_hw(runtime, backend):
    runtime.attach(backend)
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(1)
    assert runtime.mode == "hardware"
    return runtime


class TestFileSumScenario:
    """The paper's Figure 2 program, virtualized end to end."""

    SRC = """
        module summer(input wire clock);
          integer fd = $fopen("numbers.bin");
          reg [31:0] v = 0;
          reg [63:0] total = 0;
          always @(posedge clock) begin
            $fread(fd, v);
            if ($feof(fd)) begin
              $display("%0d", total);
              $finish(0);
            end else
              total <= total + v;
          end
        endmodule
    """

    def vfs_with(self, values):
        vfs = VirtualFS()
        vfs.add_file("numbers.bin",
                     b"".join(struct.pack(">I", v) for v in values))
        return vfs

    def test_fully_software(self):
        values = list(range(40))
        runtime = Runtime(self.SRC, vfs=self.vfs_with(values))
        runtime.tick(60)
        assert runtime.host.display_log[-1] == str(sum(values))

    def test_jit_mid_stream(self):
        """Transition software -> hardware in the middle of the file."""
        values = list(range(1, 41))
        runtime = Runtime(self.SRC, vfs=self.vfs_with(values))
        runtime.tick(10)  # software reads the first ten
        to_hw(runtime, DirectBoardBackend(DE10))
        runtime.tick(60)
        assert runtime.finished
        assert runtime.host.display_log[-1] == str(sum(values))

    def test_migrate_mid_stream_across_architectures(self):
        """Suspend on the DE10, resume on F1 — file cursor included."""
        values = list(range(1, 31))
        src_rt = Runtime(self.SRC, vfs=self.vfs_with(values))
        to_hw(src_rt, DirectBoardBackend(DE10))
        src_rt.tick(12)

        dst_rt = Runtime(self.SRC)
        to_hw(dst_rt, DirectBoardBackend(F1))
        migrate(src_rt, dst_rt)
        dst_rt.tick(60)
        assert dst_rt.host.display_log[-1] == str(sum(values))


class TestMinerScenario:
    def test_migrate_to_stratix10(self):
        """§5.1: the Intel backend covers the Stratix 10 with the same
        code path as the DE10 — migration works across the family."""
        from repro.fabric import STRATIX10

        target = 1 << 251
        expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, target)
        source = bitcoin.source(target=target)
        de10_rt = to_hw(Runtime(source), DirectBoardBackend(DE10))
        de10_rt.tick(2)
        s10_rt = to_hw(Runtime(source), DirectBoardBackend(STRATIX10))
        migrate(de10_rt, s10_rt)
        s10_rt.tick(expected + 4)
        assert s10_rt.engine.get("found_nonce") == expected
        assert s10_rt.placement.clock_hz > DE10.max_clock_hz

    def test_search_unperturbed_by_migration(self):
        target = 1 << 251
        expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, target)
        source = bitcoin.source(target=target)

        de10_rt = to_hw(Runtime(source), DirectBoardBackend(DE10))
        de10_rt.tick(max(1, expected // 3))
        f1_rt = to_hw(Runtime(source), DirectBoardBackend(F1))
        migrate(de10_rt, f1_rt)
        f1_rt.tick(expected + 4)
        assert f1_rt.engine.get("found") == 1
        assert f1_rt.engine.get("found_nonce") == expected


class TestSharedFabricScenario:
    def test_streaming_tenants_with_arrival_and_departure(self):
        hypervisor = Hypervisor(DE10)

        vfs_a = VirtualFS()
        text = datagen.regex_text(1200)
        vfs_a.add_file(regex.INPUT_PATH, text.encode())
        matcher = Runtime(regex.source(), vfs=vfs_a, name="a")
        matcher.tick(1)
        to_hw(matcher, hypervisor.connect("a"))
        matcher.tick(30)
        chars_before = matcher.engine.get("chars")

        counter = Runtime("""
            module c(input wire clock);
              reg [31:0] n = 0;
              always @(posedge clock) n <= n + 1;
            endmodule
        """, name="b")
        client_b = hypervisor.connect("b")
        to_hw(counter, client_b)
        counter.tick(10)

        # The matcher's stream survived the arrival handshake.
        assert matcher.engine.get("chars") == chars_before
        matcher.tick(30)
        assert matcher.engine.get("chars") > chars_before

        client_b.release(counter.placement.engine_id)
        matcher.run_to_completion = matcher.tick(5000)
        assert matcher.finished
        expected = regex.reference_matches(text)
        assert f"{expected} matches" in matcher.host.display_log[-1]


class TestQuiescenceScenario:
    def test_resume_from_nonvolatile_set_only(self):
        target = 1 << 251
        expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, target)
        program = compile_program(bitcoin.source(target=target, quiescence=True))

        first = to_hw(Runtime(program), DirectBoardBackend(F1))
        first.tick(max(2, expected // 2))
        partial = first.engine.snapshot(program.state.captured_names())
        # Architectural capture set, plus the transform's __-prefixed
        # bookkeeping that always rides along so mid-schedule
        # checkpoints replay identically.
        assert {n for n in partial if not n.startswith("__")} == {
            "nonce", "found_nonce", "found", "target"
        }

        second = to_hw(Runtime(program), DirectBoardBackend(F1))
        second.engine.restore(partial)
        second.tick(expected + 4)
        assert second.engine.get("found_nonce") == expected
