"""Property-based tests (hypothesis) on core data structures and the
central soundness invariant: transformed-on-board == original-in-sim.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import compile_program
from repro.fabric import DE10
from repro.interp import Simulator, TaskHost
from repro.interp.store import Store
from repro.interp.systasks import verilog_format
from repro.runtime import DirectBoardBackend, Runtime
from repro.verilog import (
    WidthEnv, mask, parse_expr, parse_module, print_expr, to_signed,
)
from repro.verilog.lexer import parse_based_literal

# ---------------------------------------------------------------------------
# masks / two's complement
# ---------------------------------------------------------------------------


@given(st.integers(), st.integers(min_value=1, max_value=256))
def test_mask_idempotent(value, width):
    assert mask(mask(value, width), width) == mask(value, width)


@given(st.integers(), st.integers(min_value=1, max_value=128))
def test_to_signed_roundtrip(value, width):
    unsigned = mask(value, width)
    signed = to_signed(unsigned, width)
    assert mask(signed, width) == unsigned
    assert -(1 << (width - 1)) <= signed < (1 << (width - 1))


# ---------------------------------------------------------------------------
# based literals
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.sampled_from(["h", "b", "o", "d"]))
def test_based_literal_value_roundtrip(value, base):
    digits = {"h": format(value, "x"), "b": format(value, "b"),
              "o": format(value, "o"), "d": str(value)}[base]
    _, _, _, decoded, _ = parse_based_literal(f"'{base}{digits}")
    assert decoded == value


# ---------------------------------------------------------------------------
# expression evaluation vs a Python big-int oracle
# ---------------------------------------------------------------------------

_BIN_OPS = {
    "+": lambda a, b, w: (a + b) & ((1 << w) - 1),
    "-": lambda a, b, w: (a - b) & ((1 << w) - 1),
    "*": lambda a, b, w: (a * b) & ((1 << w) - 1),
    "&": lambda a, b, w: a & b,
    "|": lambda a, b, w: a | b,
    "^": lambda a, b, w: a ^ b,
}

_EVAL_MOD = parse_module("""
module m(input wire clock);
  reg [15:0] a;
  reg [15:0] b;
endmodule
""")


@given(st.integers(min_value=0, max_value=0xFFFF),
       st.integers(min_value=0, max_value=0xFFFF),
       st.sampled_from(sorted(_BIN_OPS)))
def test_eval_matches_oracle(a, b, op):
    from repro.interp.eval_expr import Evaluator

    env = WidthEnv(_EVAL_MOD)
    store = Store(env)
    store.set("a", a)
    store.set("b", b)
    evaluator = Evaluator(env, store)
    got = evaluator.eval(parse_expr(f"a {op} b"))
    assert got == _BIN_OPS[op](a, b, 16)


@given(st.integers(min_value=0, max_value=0xFFFF),
       st.integers(min_value=0, max_value=15),
       st.integers(min_value=1, max_value=8))
def test_part_select_matches_shift_mask(value, low, width):
    if low + width > 16:
        width = 16 - low
    from repro.interp.eval_expr import Evaluator

    env = WidthEnv(_EVAL_MOD)
    store = Store(env)
    store.set("a", value)
    evaluator = Evaluator(env, store)
    got = evaluator.eval(parse_expr(f"a[{low + width - 1}:{low}]"))
    assert got == (value >> low) & ((1 << width) - 1)


# ---------------------------------------------------------------------------
# store snapshot / restore
# ---------------------------------------------------------------------------

_STORE_MOD = parse_module("""
module m(input wire clock);
  reg [31:0] x;
  reg [7:0] y;
  reg [15:0] mem [0:7];
endmodule
""")


@given(st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=255),
       st.lists(st.integers(min_value=0, max_value=0xFFFF),
                min_size=8, max_size=8))
def test_store_snapshot_restore_identity(x, y, mem):
    env = WidthEnv(_STORE_MOD)
    store = Store(env)
    store.set("x", x)
    store.set("y", y)
    for i, v in enumerate(mem):
        store.mem_set("mem", i, v)
    snap = store.snapshot()

    other = Store(env)
    other.restore(snap)
    assert other.get("x") == x
    assert other.get("y") == y
    assert other.memories["mem"] == mem


# ---------------------------------------------------------------------------
# printer round trip on generated expressions
# ---------------------------------------------------------------------------


def _exprs(depth):
    leaf = st.one_of(
        st.integers(min_value=0, max_value=999).map(str),
        st.sampled_from(["a", "b"]),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, st.sampled_from(["+", "-", "*", "&", "|", "^", "<<"]), sub)
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        st.tuples(sub, sub, sub).map(lambda t: f"({t[0]} ? {t[1]} : {t[2]})"),
        sub.map(lambda e: f"~({e})"),
        st.tuples(sub, sub).map(lambda t: f"{{{t[0]}, {t[1]}}}"),
    )


@given(_exprs(3))
@settings(max_examples=60)
def test_print_parse_fixpoint(text):
    expr = parse_expr(text)
    printed = print_expr(expr)
    assert print_expr(parse_expr(printed)) == printed


# ---------------------------------------------------------------------------
# verilog_format never crashes
# ---------------------------------------------------------------------------


@given(st.text(alphabet="%dhbosc x0123", max_size=20),
       st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=4))
def test_format_total(fmt, args):
    out = verilog_format(fmt, list(args))
    assert isinstance(out, str)


# ---------------------------------------------------------------------------
# the §3 soundness property on randomized programs
# ---------------------------------------------------------------------------


@st.composite
def small_programs(draw):
    """Random always-block bodies over two regs, with optional traps."""
    stmts = []
    n_stmts = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_stmts):
        kind = draw(st.sampled_from(["nba", "blocking", "if", "display"]))
        target = draw(st.sampled_from(["p", "q"]))
        other = "q" if target == "p" else "p"
        const = draw(st.integers(min_value=1, max_value=9))
        if kind == "nba":
            stmts.append(f"{target} <= {other} + {const};")
        elif kind == "blocking":
            stmts.append(f"{target} = {other} ^ {const};")
        elif kind == "if":
            stmts.append(
                f"if ({other}[0]) {target} <= {target} + {const}; "
                f"else {target} <= {target} - {const};"
            )
        else:
            stmts.append(f'$display("{target}=%0d", {target});')
    body = "\n".join(stmts)
    return f"""
module m(input wire clock);
  reg [7:0] p = 1;
  reg [7:0] q = 2;
  always @(posedge clock) begin
    {body}
  end
endmodule
"""


@st.composite
def memory_programs(draw):
    """Random programs exercising memories and mid-tick queries."""
    depth = draw(st.integers(min_value=4, max_value=8))
    use_random = draw(st.booleans())
    stride = draw(st.integers(min_value=1, max_value=3))
    source_expr = "$random" if use_random else f"wp * {stride}"
    return f"""
module m(input wire clock);
  reg [7:0] mem [0:{depth - 1}];
  reg [2:0] wp = 0;
  reg [15:0] checksum = 0;
  always @(posedge clock) begin
    mem[wp] <= {source_expr};
    checksum <= checksum + mem[wp];
    wp <= (wp + 1) % {depth};
  end
endmodule
"""


@given(memory_programs())
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_transform_preserves_memory_semantics(source):
    program = compile_program(source)
    ticks = 6

    host = TaskHost()
    sim = Simulator(program.flat, host, env=program.env)
    for _ in range(ticks):
        sim.tick()

    runtime = Runtime(program)
    runtime.attach(DirectBoardBackend(DE10))
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(ticks)

    assert runtime.engine.get("checksum") == sim.get("checksum")
    slot = runtime.backend.board.slots[runtime.placement.engine_id]
    assert slot.sim.store.memories["mem"] == sim.store.memories["mem"]


@given(small_programs())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_transform_preserves_semantics(source):
    program = compile_program(source)
    ticks = 5

    host = TaskHost()
    sim = Simulator(program.flat, host, env=program.env)
    for _ in range(ticks):
        sim.tick()

    runtime = Runtime(program)
    runtime.attach(DirectBoardBackend(DE10))
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(ticks)
    assert runtime.mode == "hardware"

    assert runtime.engine.get("p") == sim.get("p")
    assert runtime.engine.get("q") == sim.get("q")
    assert runtime.host.display_log == host.display_log
