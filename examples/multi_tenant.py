#!/usr/bin/env python3
"""Multi-tenancy: two distrustful tenants share one FPGA.

The §4 scenario: two independent runtime instances — a streaming regex
matcher and a DNA aligner — connect to a Synergy hypervisor managing a
single DE10.  The hypervisor coalesces their sub-programs into one
monolithic design, reprograms the fabric behind the Figure 7 state-safe
handshake (the incumbent's state survives), isolates them with
AmorphOS-style protection domains, and time-slices the shared IO path.

Run:  python examples/multi_tenant.py
"""

from repro.amorphos import ProtectionError
from repro.bench import datagen, nw, regex
from repro.fabric import DE10
from repro.hypervisor import Hypervisor
from repro.interp import VirtualFS
from repro.runtime import Runtime


def make_regex_runtime() -> Runtime:
    vfs = VirtualFS()
    vfs.add_file(regex.INPUT_PATH, datagen.regex_text(4000).encode())
    return Runtime(regex.source(), name="tenant-a/regex", vfs=vfs)


def make_nw_runtime() -> Runtime:
    vfs = VirtualFS()
    vfs.add_file(nw.INPUT_PATH, datagen.nw_pairs(200))
    return Runtime(nw.source(), name="tenant-b/nw", vfs=vfs)


def main() -> None:
    hypervisor = Hypervisor(DE10)

    # Tenant A arrives, runs alone.
    matcher = make_regex_runtime()
    client_a = hypervisor.connect("tenant-a")
    matcher.tick(1)                       # software start: $fopen etc.
    matcher.attach(client_a)
    matcher._hw_ready_at = matcher.sim_time
    matcher.tick(50)
    print(f"tenant A on fabric: chars={matcher.engine.get('chars')}, "
          f"matches={matcher.engine.get('matches')}, "
          f"global clock {hypervisor.clock_hz / 1e6:.0f} MHz")

    # Tenant B arrives: the hypervisor recompiles the combined design
    # and replays tenant A's state across the reprogram.
    aligner = make_nw_runtime()
    client_b = hypervisor.connect("tenant-b")
    aligner.tick(1)
    aligner.attach(client_b)
    aligner._hw_ready_at = aligner.sim_time
    aligner.tick(30)
    print(f"tenant B on fabric: tiles={aligner.engine.get('tiles')}; "
          f"handshakes so far: {len(hypervisor.handshakes)}")

    # Tenant A kept its progress across the handshake — and keeps going.
    before = matcher.engine.get("chars")
    matcher.tick(50)
    print(f"tenant A after resharing: chars {before} -> "
          f"{matcher.engine.get('chars')} (state preserved and advancing)")

    # Protection: tenant A cannot reach tenant B's engine.
    try:
        client_a.channel(aligner.placement.engine_id)
        raise AssertionError("protection breach!")
    except ProtectionError as exc:
        print(f"protection enforced: {exc}")

    # Hull-side view.
    residents = hypervisor.hull.residents if hypervisor.hull else []
    for morphlet in residents:
        print(f"  morphlet {morphlet.morphlet_id}: domain "
              f"{morphlet.domain.name!r}, zone {morphlet.zone}, "
              f"{morphlet.port.reg_map.words} CntrlReg words")

    # Tenant B finishes; the design is recompiled without it.
    client_b.release(aligner.placement.engine_id)
    matcher.tick(25)
    print(f"tenant B evicted; tenant A still running "
          f"(chars={matcher.engine.get('chars')}, "
          f"engines resident: {len(hypervisor.table.active)})")


if __name__ == "__main__":
    main()
