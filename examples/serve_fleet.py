#!/usr/bin/env python3
"""Hypervisor-as-a-service: a three-board fleet serving a live trace.

The serving layer stacks every mechanism in the repo: tenants arrive
on a seeded Poisson trace, admission control meters them in, the
deficit-round-robin slicer time-slices at quiescence boundaries,
placement scores boards by artifact warmth, same-digest software
tenants are vectorized into cohorts, and the rebalancer migrates
tenants as boards fill.  All of it behind one asyncio call:
``await frontend.submit(...)``.

Run:  python examples/serve_fleet.py
"""

import asyncio
import dataclasses

from repro.compiler import CompilerService
from repro.fabric import DE10
from repro.harness.common import arrival_trace
from repro.hypervisor import Hypervisor
from repro.serve import Fleet, FleetConfig, ServeConfig, ServeFrontend

#: fast-compiling DE10s so the demo reaches hardware in seconds
FAST = dataclasses.replace(DE10, compile_seconds=0.2,
                           reconfig_seconds=0.01)


async def main() -> None:
    service = CompilerService()
    fleet = Fleet([Hypervisor(FAST, compiler=service) for _ in range(3)],
                  FleetConfig(board_capacity=1))
    config = ServeConfig(max_running=32, per_tenant=16, quantum_ticks=16)
    trace = arrival_trace(seed=42, n=24, rate_hz=150.0)
    print(f"serving {len(trace)} arrivals over "
          f"{trace[-1].at:.2f}s on 3 boards...")

    async with ServeFrontend(fleet, config) as frontend:
        handles = []
        started = asyncio.get_event_loop().time()
        for arrival in trace:
            # Pace submissions to the trace's real arrival times.
            delay = arrival.at - (asyncio.get_event_loop().time() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            handles.append(await frontend.submit(
                arrival.source, ticks=arrival.ticks,
                priority=arrival.priority, tenant=arrival.tenant,
                name=arrival.name))
        results = [await handle.result() for handle in handles]

        print(f"\n{'name':<12} {'design':<10} {'prio':<7} "
              f"{'dest':<9} {'ticks':>5} {'preempt':>7} {'ttft ms':>8}")
        for arrival, result in zip(trace, results):
            ttft = f"{result.ttft_s * 1e3:8.1f}" if result.ttft_s else "     n/a"
            print(f"{result.name:<12} {arrival.design:<10} "
                  f"{arrival.priority:<7} {result.destination:<9} "
                  f"{result.ticks:>5} {result.preemptions:>7} {ttft}")

        stats = frontend.stats()
        print(f"\nadmitted {stats['admission']['admitted']}, "
              f"preemptions {stats['slicer']['preemptions']}, "
              f"cohorts formed {stats['fleet']['cohorts']['formed']}, "
              f"placement {stats['placement']['hardware']} hw / "
              f"{stats['placement']['software']} sw")


if __name__ == "__main__":
    asyncio.run(main())
