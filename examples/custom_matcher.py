#!/usr/bin/env python3
"""Customizing the benchmarks (artifact appendix A.7): compile *your*
regex into a streaming hardware matcher.

The stock ``regex`` benchmark hard-codes one DNA motif.  Here we compile
a user-supplied pattern through the regex → NFA → DFA → Verilog pipeline
(``repro.bench.regexc``) and virtualize the generated module like any
other program: run it on a simulated DE10, let ``$fgetc`` stream through
IO traps, and cross-check the count against the Python reference.

Run:  python examples/custom_matcher.py 'AC(G|T)+A'
"""

import sys

from repro.bench import datagen
from repro.bench.regexc import compile_dfa, reference_count, source
from repro.fabric import DE10
from repro.interp import VirtualFS
from repro.runtime import DirectBoardBackend, Runtime


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "AC(G|T)+A"
    text = datagen.regex_text(3000, seed=42)

    dfa = compile_dfa(pattern)
    print(f"pattern {pattern!r} -> minimized DFA with {dfa.n_states} states, "
          f"{len(dfa.accepting)} accepting")

    verilog = source(pattern, module_name="user_matcher")
    print(f"generated {len(verilog.splitlines())} lines of Verilog")

    vfs = VirtualFS()
    vfs.add_file("regex_input.txt", text.encode())
    runtime = Runtime(verilog, vfs=vfs)
    print(f"transformed: {runtime.program.transform.n_states} control "
          f"states, {len(runtime.program.transform.tasks)} trap sites")

    runtime.tick(1)
    runtime.attach(DirectBoardBackend(DE10))
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(len(text) + 4)

    assert runtime.finished
    report = runtime.host.display_log[-1]
    expected = reference_count(pattern, text)
    print(f"hardware said: {report!r}")
    print(f"python reference: {expected} matches")
    assert f"{expected} matches" in report
    print(f"virtualized matcher rate: ~{runtime.ticks / runtime.sim_time:,.0f} reads/s")


if __name__ == "__main__":
    main()
