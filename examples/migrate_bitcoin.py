#!/usr/bin/env python3
"""Workload migration: suspend a miner on a DE10, resume it on F1.

The Figure 9 scenario as a script: a Bitcoin miner (real double
SHA-256) runs on one device, is suspended mid-search with ``$save``
semantics, and the captured context — program state, file cursors,
logical time — is resumed on a completely different FPGA architecture.
The search picks up exactly where it left off: same nonce trajectory,
same result, higher throughput.

Run:  python examples/migrate_bitcoin.py
"""

from repro.bench import bitcoin
from repro.fabric import DE10, F1
from repro.hypervisor import migrate
from repro.runtime import DirectBoardBackend, Runtime

TARGET = 1 << 250  # ~1-in-64 difficulty: found after a few dozen nonces


def to_hardware(runtime: Runtime, backend: DirectBoardBackend) -> None:
    runtime.attach(backend)
    runtime._hw_ready_at = runtime.sim_time  # caches primed, as in §6
    runtime.tick(1)


def main() -> None:
    source = bitcoin.source(target=TARGET)
    expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, TARGET)
    print(f"difficulty target 2^250; reference search says nonce={expected}")

    # Phase 1: mine on the DE10 for a while.
    de10_runtime = Runtime(source, name="miner@de10")
    to_hardware(de10_runtime, DirectBoardBackend(DE10))
    halfway = max(1, expected // 2)
    de10_runtime.tick(halfway)
    print(f"DE10: mode={de10_runtime.mode}, "
          f"nonce reached {de10_runtime.engine.get('nonce')}, "
          f"rate {de10_runtime.measure_rate(16):,.0f} hashes/s")

    # Phase 2: suspend, move the context to an F1 instance, resume.
    f1_runtime = Runtime(source, name="miner@f1")
    to_hardware(f1_runtime, DirectBoardBackend(F1))
    report = migrate(de10_runtime, f1_runtime)
    print(f"migrated {report.state_bits} state bits "
          f"({report.total_seconds:.1f} modeled seconds: "
          f"{report.suspend_seconds:.1f} suspend + "
          f"{report.resume_seconds:.1f} resume)")

    # Phase 3: finish the search on F1.
    f1_runtime.tick(expected)  # more than enough
    assert f1_runtime.engine.get("found") == 1
    found = f1_runtime.engine.get("found_nonce")
    print(f"F1: found nonce {found} "
          f"(rate {f1_runtime.measure_rate(512):,.0f} hashes/s)")
    assert found == expected, "migration must not perturb the search"
    digest = bitcoin.reference_digest(bitcoin.DEFAULT_DATA, found)
    print(f"double-SHA256 digest: {digest.hex()}")


if __name__ == "__main__":
    main()
