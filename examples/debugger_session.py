#!/usr/bin/env python3
"""Step-through debugging of hardware (the §3 future-work application).

Because Synergy lowers every program onto an explicit state machine
that can stop *between the statements of a begin/end block*, a debugger
falls out of the design: break on a ``$fread``, inspect variables
mid-tick (before non-blocking assignments latch!), patch state, and
single-step native cycles.

This session debugs the paper's file-summing program (Figure 2).

Run:  python examples/debugger_session.py
"""

import struct

from repro.debug import Debugger
from repro.interp import VirtualFS

PROGRAM = """
module summer(input wire clock);
  integer fd = $fopen("numbers.bin");
  reg [31:0] v = 0;
  reg [63:0] total = 0;
  always @(posedge clock) begin
    $fread(fd, v);
    if ($feof(fd)) begin
      $display("%0d", total);
      $finish(0);
    end else
      total <= total + v;
  end
endmodule
"""


def main() -> None:
    values = [10, 20, 30, 40]
    vfs = VirtualFS()
    vfs.add_file("numbers.bin", b"".join(struct.pack(">I", v) for v in values))
    dbg = Debugger(PROGRAM, vfs=vfs)
    print(f"program has {dbg.program.transform.n_states} control states; "
          f"trap sites: "
          f"{sorted(s.name for s in dbg.program.transform.tasks.values())}")

    # Break every time the program blocks on its file read.
    dbg.break_at_task("$fread")
    event = dbg.continue_()
    print(f"\nstopped: {event.reason} at state {dbg.current_state} "
          f"on {event.trap.name}")
    print(f"  mid-tick locals: {dbg.locals()}")

    # Service the read ourselves and watch the value land mid-tick.
    dbg.service_trap()
    print(f"  after servicing the read: v={dbg.read('v')} "
          f"(total still {dbg.read('total')} — the NBA hasn't latched)")

    # Finish the tick: the non-blocking assignment commits.
    dbg.clear_breakpoints()
    dbg.step_tick()
    print(f"  at the tick boundary: total={dbg.read('total')}")

    # Patch live state: pretend the first value was 1000 bigger.
    dbg.write("total", dbg.read("total") + 1000)
    print(f"  patched total to {dbg.read('total')}")

    # Watchpoint: run until the accumulated total crosses a threshold.
    dbg.watch(lambda d: d.read("total") >= 1000 + sum(values[:3]))
    event = dbg.continue_()
    print(f"\nwatchpoint hit after tick {dbg.ticks}: "
          f"total={dbg.read('total')}")

    # Let the program run out; it should report the patched sum.
    dbg.clear_breakpoints()
    while not dbg.host.finished:
        dbg.step_tick()
    print(f"\nprogram said: {dbg.host.display_log[-1]!r} "
          f"(original sum {sum(values)} + our 1000 patch)")
    assert dbg.host.display_log[-1] == str(sum(values) + 1000)


if __name__ == "__main__":
    main()
