#!/usr/bin/env python3
"""The quiescence interface: $yield and non_volatile annotations (§5.3).

Synergy captures *all* program variables by default — transparent, but
expensive: every bit needs state-access logic on the fabric.  An
application that knows its own consistent points can assert ``$yield``
and mark only its essential state ``(* non_volatile *)``; everything
else becomes the program's own responsibility to rebuild, and the
backend skips its capture logic.

This demo compiles the Bitcoin miner both ways and shows (a) the
capture-set shrinking from ~5.5 kbit to ~0.3 kbit, (b) the fabric
savings, and (c) a state-safe reprogramming that only replays the
non-volatile set — after which the program still mines correctly,
because its volatile scratch is rebuilt at the top of every tick.

Run:  python examples/quiescence_demo.py
"""

from repro.bench import bitcoin
from repro.core import compile_program
from repro.fabric import F1, Synthesizer
from repro.runtime import DirectBoardBackend, Runtime, synth_options_for
from repro.verilog.width import WidthEnv

TARGET = 1 << 250


def describe(tag: str, program) -> int:
    state = program.state
    options = synth_options_for(program)
    est = Synthesizer(options).estimate(
        program.transform.module, WidthEnv(program.transform.module)
    )
    print(f"{tag}:")
    print(f"  uses $yield: {state.uses_yield}")
    print(f"  state: {state.total_bits} bits total, "
          f"{state.captured_bits} captured "
          f"({state.volatile_fraction:.0%} volatile)")
    print(f"  fabric: {est.luts} LUTs, {est.ffs} FFs")
    return est.ffs


def main() -> None:
    transparent = compile_program(bitcoin.source(target=TARGET))
    quiescent = compile_program(bitcoin.source(target=TARGET, quiescence=True))

    ffs_plain = describe("transparent capture (default)", transparent)
    ffs_q = describe("quiescence protocol ($yield)", quiescent)
    print(f"=> quiescence saves {1 - ffs_q / ffs_plain:.0%} of FFs\n")

    # Run the quiescent miner and replay ONLY its non-volatile state
    # through a suspend/resume — the $yield contract in action.
    expected = bitcoin.find_nonce(bitcoin.DEFAULT_DATA, TARGET)
    runtime = Runtime(quiescent)
    backend = DirectBoardBackend(F1)
    runtime.attach(backend)
    runtime._hw_ready_at = runtime.sim_time
    runtime.tick(max(2, expected // 2))
    capture_names = quiescent.state.captured_names()
    partial = runtime.engine.snapshot(capture_names)
    print(f"captured only {sorted(partial)} at a $yield boundary")

    fresh = Runtime(quiescent)
    fresh.attach(DirectBoardBackend(F1))
    fresh._hw_ready_at = fresh.sim_time
    fresh.tick(1)
    fresh.engine.restore(partial)
    fresh.tick(expected + 4)
    assert fresh.engine.get("found") == 1
    assert fresh.engine.get("found_nonce") == expected
    print(f"resumed from the non-volatile set alone: nonce "
          f"{fresh.engine.get('found_nonce')} (correct: {expected})")


if __name__ == "__main__":
    main()
