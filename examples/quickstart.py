#!/usr/bin/env python3
"""Quickstart: virtualize a Verilog program with Synergy.

Demonstrates the core flow on the paper's motivating example (Figure 2):
a program that uses unsynthesizable file IO to sum the values in a
large file.

1. compile the program through the Synergy pipeline (parse → flatten →
   state-machine transformation);
2. start it in the software interpreter;
3. JIT it onto a simulated DE10 — where the ``$fread``/``$feof``/
   ``$display`` tasks keep working, as **sub-clock-tick traps** serviced
   by the runtime;
4. inspect the result and the virtualization bookkeeping.

Run:  python examples/quickstart.py
"""

import struct

from repro.fabric import DE10
from repro.interp import VirtualFS
from repro.runtime import DirectBoardBackend, Runtime

PROGRAM = r"""
module summer(input wire clock);
  integer fd = $fopen("numbers.bin");
  reg [31:0] value = 0;
  reg [63:0] total = 0;

  always @(posedge clock) begin
    $fread(fd, value);
    if ($feof(fd)) begin
      $display("total: %0d", total);
      $finish(0);
    end else
      total <= total + value;
  end
endmodule
"""


def main() -> None:
    # OS-managed resources live in a virtual filesystem.
    numbers = list(range(1, 1001))
    vfs = VirtualFS()
    vfs.add_file("numbers.bin", b"".join(struct.pack(">I", n) for n in numbers))

    runtime = Runtime(PROGRAM, vfs=vfs)
    print(f"compiled: {runtime.program.name!r}, "
          f"{runtime.program.transform.n_states} states, "
          f"{len(runtime.program.transform.tasks)} trap sites, "
          f"{runtime.program.state.total_bits} state bits")

    # Programs always start in the software interpreter...
    runtime.tick(10)
    print(f"after 10 software ticks: total={runtime.engine.get('total')} "
          f"(mode={runtime.mode})")

    # ...and transition to hardware once a placement is ready.
    backend = DirectBoardBackend(DE10)
    placement = runtime.attach(backend)
    runtime._hw_ready_at = runtime.sim_time  # pretend the cache was primed
    runtime.tick(1)
    print(f"placed on {backend.device.name}: clock "
          f"{placement.clock_hz / 1e6:.0f} MHz (mode={runtime.mode})")

    # File IO keeps flowing from hardware, through trap servicing.
    print(f"virtual frequency: {runtime.measure_rate(64):,.0f} ticks/s "
          "(IO-trap bound)")
    runtime.tick(2000)
    print(f"finished={runtime.finished}; program said: "
          f"{runtime.host.display_log[-1]!r}")
    assert runtime.host.display_log[-1] == f"total: {sum(numbers)}"

    channel = runtime.engine.channel
    print(f"ABI traffic: {channel.stats.messages} messages, "
          f"{channel.stats.traps_serviced} traps serviced")


if __name__ == "__main__":
    main()
